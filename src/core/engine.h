// Reusable clustering engine — index builds and workspace allocations
// amortized across runs (DESIGN.md §9).
//
// The free functions fdbscan() / fdbscan_densebox() rebuild the BVH and
// every O(n) scratch buffer per call. That is the right shape for one-shot
// clustering and exactly the wrong one for the workloads the benches model:
// parameter sweeps (fig4_eps, fig4_minpts) and repeated traffic re-cluster
// the *same* points, yet pay index construction and full reallocation
// every iteration. An Engine is constructed once from a point set and
// owns, across runs:
//
//   * the point BVH — eps-independent (eps is a query parameter, §4.1),
//     so a whole (eps, minpts) sweep needs exactly one build;
//   * a small LRU cache of DenseBox index bundles (DenseGrid + mixed-
//     primitive BVH + isolated ids), keyed by (eps, cell_width_factor,
//     max(minpts, 1)) — the grid IS eps/minpts-dependent (§4.2), so only
//     repeats hit, but a hit skips the entire index phase;
//   * a grow-only workspace (exec/workspace.h) for the union-find parents
//     and the finalization rank scratch, so a warmed run performs zero
//     heap allocations beyond the result vectors it hands to the caller.
//
// run()/run_densebox()/sweep() execute the exact kernels of the free
// functions — same launches, same order — so labels are bit-identical to
// the one-shot path at any worker count (tests/test_engine.cpp). The free
// functions are thin wrappers constructing a one-shot Engine.
//
// Thread-safety: one engine = one concurrent run. Runs mutate the cache,
// the counters and the workspace; clustering different parameter sets in
// parallel takes one Engine per thread (they can share the points).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "bvh/bvh.h"
#include "core/clustering.h"
#include "exec/cancel.h"
#include "exec/graph/task_graph.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "exec/simd.h"
#include "exec/workspace.h"
#include "geometry/point.h"
#include "geometry/points_view.h"
#include "grid/dense_grid.h"

namespace fdbscan {

/// A clustering run decomposed into its dependency-ordered phases
/// (index → pre → main → finalize). Executing the phases in order —
/// serially (Engine::run does exactly this) or as a task-graph chain
/// (exec/graph) — performs the identical kernel launches in the
/// identical order, so labels and work counters are bit-identical
/// between the two paths at any worker count. The phase closures share
/// ownership of all intermediate state; `result` holds the clustering
/// once the last phase has run. The engine must outlive the phases
/// (runs still serialize per engine: one staged run at a time).
struct StagedRun {
  std::vector<exec::graph::Phase> phases;
  std::shared_ptr<Clustering> result;
};

struct EngineConfig {
  /// Maximum number of DenseBox index bundles kept alive (LRU evicted).
  std::int32_t grid_cache_capacity = 4;
  /// Optional device-memory accounting for everything the engine owns:
  /// the point BVH, the cached grid bundles and the workspace arena.
  /// Charged when built/grown, released on eviction/destruction.
  exec::MemoryTracker* memory = nullptr;
};

/// Cumulative amortization counters since engine construction.
struct EngineCounters {
  std::int64_t runs = 0;             ///< clustering runs executed
  std::int64_t index_builds = 0;     ///< BVH constructions (point or mixed)
  std::int64_t grid_builds = 0;      ///< DenseBox bundle builds (cache misses)
  std::int64_t grid_cache_hits = 0;  ///< DenseBox bundle reuses
  std::int64_t grid_cache_evictions = 0;
  std::int64_t workspace_reallocs = 0;  ///< workspace arena growths
  /// Sharded executors dropped by the service holder's per-dataset LRU
  /// (service/service.h). Always 0 for a standalone Engine — the field
  /// lives here so pool/dataset telemetry folds it like the others.
  std::int64_t sharded_evictions = 0;
};

template <int DIM>
class Engine {
 public:
  /// The engine borrows `points`: the caller keeps ownership and must
  /// keep the vector alive and unmodified for the engine's lifetime
  /// (points are immutable input — re-clustering new data is a new
  /// engine, there is no invalidation path). Mutable point sets layer on
  /// top rather than in here: stream/streaming_engine.h pairs an Engine
  /// over a frozen base with a side delta buffer and replaces the engine
  /// wholesale at rebuild, keeping this immutability contract intact.
  explicit Engine(const std::vector<Point<DIM>>& points,
                  EngineConfig config = {})
      : points_(&points),
        config_(config),
        workspace_(kNumSlots, config.memory) {}

  /// Same, with a pre-packed SoA mirror of `points` (e.g. the sharded
  /// gather fills both layouts in one pass). The store feeds the index
  /// build and is released afterwards; it must match `points`
  /// element-for-element.
  Engine(const std::vector<Point<DIM>>& points, PointsStore<DIM>&& soa,
         EngineConfig config = {})
      : points_(&points),
        config_(config),
        workspace_(kNumSlots, config.memory),
        pending_soa_(std::move(soa)) {}

  ~Engine() {
    if (config_.memory) {
      if (bvh_) config_.memory->release(bvh_bytes_);
      for (const auto& entry : grid_cache_) {
        config_.memory->release(entry->tracked_bytes);
      }
    }
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return points_->size(); }
  [[nodiscard]] const std::vector<Point<DIM>>& points() const noexcept {
    return *points_;
  }
  [[nodiscard]] const EngineCounters& counters() const noexcept {
    return counters_;
  }

  /// True once the point BVH exists (a subsequent run() rebuilds nothing).
  [[nodiscard]] bool index_built() const noexcept { return bvh_ != nullptr; }

  /// True when a run_densebox(params, options) would hit the bundle cache.
  [[nodiscard]] bool grid_cached(const Parameters& params,
                                 const Options& options = {}) const noexcept {
    return find_grid(params, options) != nullptr;
  }

  /// The engine's point BVH, built on first use (counted in
  /// counters().index_builds exactly like a run()'s index phase). The
  /// sharded executor (shard/sharded_engine.h) drives the two-phase
  /// kernels itself over per-shard engines and needs the raw index; the
  /// returned reference stays valid for the engine's lifetime.
  [[nodiscard]] const Bvh<DIM>& index() { return ensure_bvh(); }

  /// FDBSCAN (§4.1) over the engine's points. Bit-identical to
  /// fdbscan(points, params, options) at any worker count; the index
  /// phase is ~free on every run after the first. Implemented as the
  /// serial execution of stage(): one code path for fork-join and graph.
  [[nodiscard]] Clustering run(const Parameters& params,
                               const Options& options = {}) {
    StagedRun staged = stage(params, options);
    for (exec::graph::Phase& phase : staged.phases) phase.fn();
    return std::move(*staged.result);
  }

  /// FDBSCAN decomposed into its four phases for the task-graph runtime
  /// (DESIGN.md §15). Counts as a run (begin_run() happens here, so a
  /// pre-cancelled token fast-fails before any node is queued); the
  /// phase closures perform the exact kernels of the one-shot path.
  [[nodiscard]] StagedRun stage(const Parameters& params,
                                const Options& options = {}) {
    StagedRun staged;
    staged.result = std::make_shared<Clustering>();
    const auto n = static_cast<std::int64_t>(points_->size());
    if (n == 0) return staged;  // empty phases; *result is already {}
    auto st = std::make_shared<StageState>();
    st->params = params;
    st->options = options;
    st->n = n;
    st->eps2 = params.eps * params.eps;
    st->snap = begin_run();

    staged.phases.push_back(exec::graph::Phase{"fdbscan/index", [this, st] {
      // The result vectors (labels + core flags) are the caller's
      // product; charge them to the per-run tracker like the one-shot
      // path always did. Engine-owned state is charged to config.memory.
      // Charge and profiler start here — not at stage time — so queue
      // wait ahead of the first node never counts as index time.
      st->charge.emplace(
          st->options.memory,
          points_->size() * (sizeof(std::int32_t) + sizeof(std::uint8_t)));
      st->timer.emplace();
      st->bvh = &ensure_bvh();
      st->timings.index_construction = st->timer->lap(
          "fdbscan/index", &st->timings.index_construction_profile);
    }});

    staged.phases.push_back(exec::graph::Phase{"fdbscan/pre", [this, st] {
      // --- Preprocessing: determine core points ---------------------------
      // Work counters accumulate into striped per-thread slots: a shared
      // atomic here would serialize every traversal thread on one cache
      // line.
      const auto& points = *points_;
      const Bvh<DIM>& bvh = *st->bvh;
      const Parameters params = st->params;
      const Options& options = st->options;
      const float eps2 = st->eps2;
      st->is_core.assign(points.size(), 0);
      auto& is_core = st->is_core;
      if (params.minpts <= 1) {
        // Degenerate density threshold: every point is core.
        exec::parallel_for("fdbscan/pre/all-core", st->n, [&](std::int64_t i) {
          is_core[static_cast<std::size_t>(i)] = 1;
        });
      } else if (params.minpts > 2) {
        exec::parallel_for("fdbscan/pre/core-count", st->n,
                           [&](std::int64_t i) {
          const auto& x = points[static_cast<std::size_t>(i)];
          std::int32_t count = 0;  // the traversal finds x itself at distance 0
          TraversalStats stats;  // stack-local: increments stay in registers
          bvh.for_each_near(
              x, eps2, 0,
              [&](std::int32_t, std::int32_t) {
                ++count;
                return (options.early_exit && count >= params.minpts)
                           ? TraversalControl::kTerminate
                           : TraversalControl::kContinue;
              },
              &stats);
          if (count >= params.minpts) is_core[static_cast<std::size_t>(i)] = 1;
          st->work.local() += stats;
        });
      }
      st->timings.preprocessing =
          st->timer->lap("fdbscan/pre", &st->timings.preprocessing_profile);
    }});

    staged.phases.push_back(exec::graph::Phase{"fdbscan/main", [this, st] {
      // --- Main phase: fused traversal + union-find -----------------------
      const auto& points = *points_;
      const Bvh<DIM>& bvh = *st->bvh;
      const Options& options = st->options;
      const float eps2 = st->eps2;
      auto& is_core = st->is_core;
      st->labels = workspace_.acquire<std::int32_t>(kUnionFind, points.size());
      init_singletons(st->labels.data(), static_cast<std::int32_t>(st->n));
      UnionFindView uf(st->labels.data(), static_cast<std::int32_t>(st->n));
      const bool fof = st->params.minpts == 2;  // Friends-of-Friends fast path

      exec::parallel_for("fdbscan/main/traverse-union", st->n,
                         [&](std::int64_t pos) {
        // Threads are assigned sorted leaf positions (not raw ids) so that
        // neighboring threads touch neighboring memory — the batched, low
        // data-divergence launch of §3.2.
        const std::int32_t x = bvh.primitive_at(static_cast<std::int32_t>(pos));
        const auto& px = points[static_cast<std::size_t>(x)];
        const std::int32_t mask =
            options.masked_traversal ? static_cast<std::int32_t>(pos) + 1 : 0;
        TraversalStats stats;
        bvh.for_each_near(
            px, eps2, mask,
            [&](std::int32_t, std::int32_t y) {
              if (y != x) {
                if (fof) {
                  // Any eps-close pair consists of two core points (|N| >= 2).
                  exec::atomic_store_relaxed(
                      is_core[static_cast<std::size_t>(x)], std::uint8_t{1});
                  exec::atomic_store_relaxed(
                      is_core[static_cast<std::size_t>(y)], std::uint8_t{1});
                  uf.merge(x, y);
                } else {
                  detail::resolve_pair(uf, is_core, x, y, options.variant);
                }
              }
              return TraversalControl::kContinue;
            },
            &stats);
        st->work.local() += stats;
      });
      st->timings.main = st->timer->lap("fdbscan/main", &st->timings.main_profile);
    }});

    staged.phases.push_back(exec::graph::Phase{
        "fdbscan/finalize", [this, st, result = staged.result] {
      // --- Finalization ---------------------------------------------------
      flatten(st->labels.data(), static_cast<std::int32_t>(st->n));
      std::span<std::int32_t> compact =
          workspace_.acquire<std::int32_t>(kCompact, points_->size());
      Clustering out = detail::finalize_labels_with_scratch(
          st->labels.data(), st->n, std::move(st->is_core), compact.data());
      st->timings.finalization = st->timer->lap(
          "fdbscan/finalize", &st->timings.finalization_profile);
      out.timings = st->timings;
      const TraversalStats total_work = st->work.combine();
      out.distance_computations = total_work.leaves_tested;
      out.index_nodes_visited = total_work.nodes_visited;
      end_run(st->snap, out, st->options);
      // Release the per-run tracker charge here, not when the StageState
      // dies with the GraphRun: the caller may destroy its per-request
      // Options::memory tracker as soon as the result future resolves,
      // and the deferred release would then touch a dead tracker.
      st->charge.reset();
      *result = std::move(out);
    }});
    return staged;
  }

  /// FDBSCAN-DenseBox (§4.2) over the engine's points. The grid + mixed
  /// BVH bundle is cached by (eps, cell_width_factor, max(minpts, 1)):
  /// re-running a cached configuration skips the entire index phase.
  /// Like run(), the serial execution of stage_densebox().
  [[nodiscard]] Clustering run_densebox(const Parameters& params,
                                        const Options& options = {}) {
    StagedRun staged = stage_densebox(params, options);
    for (exec::graph::Phase& phase : staged.phases) phase.fn();
    return std::move(*staged.result);
  }

  /// FDBSCAN-DenseBox decomposed into its four phases for the task-graph
  /// runtime (DESIGN.md §15); see stage().
  [[nodiscard]] StagedRun stage_densebox(const Parameters& params,
                                         const Options& options = {}) {
    StagedRun staged;
    staged.result = std::make_shared<Clustering>();
    const auto n = static_cast<std::int64_t>(points_->size());
    if (n == 0) return staged;  // empty phases; *result is already {}
    auto st = std::make_shared<StageState>();
    st->params = params;
    st->options = options;
    st->n = n;
    st->eps2 = params.eps * params.eps;
    st->snap = begin_run();

    staged.phases.push_back(exec::graph::Phase{"densebox/index", [this, st] {
      st->charge.emplace(
          st->options.memory,
          points_->size() * (sizeof(std::int32_t) + sizeof(std::uint8_t)));
      st->timer.emplace();
      // --- Index: grid + BVH over mixed primitives, cached ----------------
      // The entry pointer stays valid through the run: one run at a time
      // per engine, and ensure_grid is only called from index phases.
      st->grid = &ensure_grid(st->params, st->options);
      st->timings.index_construction = st->timer->lap(
          "densebox/index", &st->timings.index_construction_profile);
    }});

    staged.phases.push_back(exec::graph::Phase{"densebox/pre", [this, st] {
      const auto& points = *points_;
      const GridEntry& entry = *st->grid;
      const DenseGrid<DIM>& grid = entry.grid;
      const Bvh<DIM>& bvh = entry.bvh;
      const std::vector<std::int32_t>& isolated_ids = entry.isolated_ids;
      const std::int32_t num_cells = grid.num_dense_cells();
      const auto& cells = grid.cells();
      const auto& perm = grid.permutation();
      const std::int32_t dense_points = grid.points_in_dense_cells();
      const auto num_isolated =
          static_cast<std::int32_t>(st->n) - dense_points;  // outside cells
      const Parameters params = st->params;
      const Options& options = st->options;
      const float eps2 = st->eps2;
      auto& is_core = st->is_core;

      // --- Preprocessing ---------------------------------------------------
      // Work accounting: explicit within() scans over dense-cell members
      // plus every leaf-primitive bounds test (exact for point primitives,
      // a box-distance test for dense-box primitives) count as distance
      // computations; internal node tests count as index work. Tallies go
      // into striped per-thread slots (leaves_tested absorbs the member
      // scans) — never a shared atomic in the traversal loop.
      is_core.assign(points.size(), 0);
      exec::parallel_for("densebox/pre/dense-core", dense_points,
                         [&](std::int64_t k) {
        is_core[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] =
            1;
      });
      if (params.minpts <= 1) {
        exec::parallel_for("densebox/pre/all-core", st->n,
                           [&](std::int64_t i) {
          is_core[static_cast<std::size_t>(i)] = 1;
        });
      } else if (params.minpts > 2) {
        const auto member_axes = grid.member_axes();
        exec::parallel_for("densebox/pre/core-count", num_isolated,
                           [&](std::int64_t k) {
          const std::int32_t x = isolated_ids[static_cast<std::size_t>(k)];
          const auto& px = points[static_cast<std::size_t>(x)];
          std::int32_t count = 0;  // includes x itself (found as a primitive)
          std::int64_t scans = 0;
          TraversalStats stats;  // stack-local: increments stay in registers
          bvh.for_each_near(
              px, eps2, 0,
              [&](std::int32_t, std::int32_t pid) {
                if (pid < num_cells) {
                  // Lane-group membership scan over the cell's SoA span;
                  // `scans` advances group-granularly (exec/simd.h), and
                  // the early stop lands on the same cell as a per-member
                  // scan would (the threshold is reached at the group
                  // holding the minpts-th neighbor).
                  const CellRange& cell = cells[static_cast<std::size_t>(pid)];
                  count += simd::count_within<DIM>(
                      member_axes, cell.begin, cell.end, px, eps2,
                      options.early_exit ? params.minpts - count
                                         : std::int32_t{0},
                      scans);
                  if (options.early_exit && count >= params.minpts) {
                    return TraversalControl::kTerminate;
                  }
                } else {
                  ++count;  // point primitive: bounds test already was exact
                  if (options.early_exit && count >= params.minpts) {
                    return TraversalControl::kTerminate;
                  }
                }
                return TraversalControl::kContinue;
              },
              &stats);
          if (count >= params.minpts) is_core[static_cast<std::size_t>(x)] = 1;
          stats.leaves_tested += scans;
          st->work.local() += stats;
        });
      }
      st->timings.preprocessing =
          st->timer->lap("densebox/pre", &st->timings.preprocessing_profile);
    }});

    staged.phases.push_back(exec::graph::Phase{"densebox/main", [this, st] {
      const auto& points = *points_;
      const GridEntry& entry = *st->grid;
      const DenseGrid<DIM>& grid = entry.grid;
      const Bvh<DIM>& bvh = entry.bvh;
      const std::vector<std::int32_t>& isolated_ids = entry.isolated_ids;
      const std::int32_t num_cells = grid.num_dense_cells();
      const auto& cells = grid.cells();
      const auto& perm = grid.permutation();
      const Parameters params = st->params;
      const Options& options = st->options;
      const float eps2 = st->eps2;
      auto& is_core = st->is_core;

      // --- Main phase -------------------------------------------------------
      st->labels = workspace_.acquire<std::int32_t>(kUnionFind, points.size());
      init_singletons(st->labels.data(), static_cast<std::int32_t>(st->n));
      UnionFindView uf(st->labels.data(), static_cast<std::int32_t>(st->n));
      const bool fof = params.minpts == 2;

      // Union every dense cell internally (all members are one cluster).
      exec::parallel_for("densebox/main/cell-union", num_cells,
                         [&](std::int64_t c) {
        const CellRange& cell = cells[static_cast<std::size_t>(c)];
        const std::int32_t first = perm[static_cast<std::size_t>(cell.begin)];
        for (std::int32_t m = cell.begin + 1; m < cell.end; ++m) {
          uf.merge(first, perm[static_cast<std::size_t>(m)]);
        }
      });

      // Tree search for all points (dense-cell members included: they are
      // the ones stitching adjacent cells together).
      const auto member_axes = grid.member_axes();
      exec::parallel_for("densebox/main/traverse-union", st->n,
                         [&](std::int64_t i) {
        const auto x = static_cast<std::int32_t>(i);
        const auto& px = points[static_cast<std::size_t>(x)];
        const std::int32_t own_cell =
            grid.dense_cell_of()[static_cast<std::size_t>(x)];
        // Atomic: in the FoF path other threads set is_core[x] concurrently.
        const bool xc =
            exec::atomic_load_relaxed(is_core[static_cast<std::size_t>(x)]) !=
            0;
        std::int64_t scans = 0;
        TraversalStats stats;
        bvh.for_each_near(
            px, eps2, 0,
            [&](std::int32_t, std::int32_t pid) {
          if (pid < num_cells) {
            if (pid == own_cell) return TraversalControl::kContinue;
            const CellRange& cell = cells[static_cast<std::size_t>(pid)];
            // One eps-close witness connects x to the whole (core) cell.
            // The lane-group scan returns the lowest-index witness — the
            // same member a sequential scan finds — so merge targets are
            // unchanged; `scans` advances group-granularly (exec/simd.h).
            const std::int32_t m = simd::first_within<DIM>(
                member_axes, cell.begin, cell.end, px, eps2, scans);
            if (m >= 0) {
              const std::int32_t y = perm[static_cast<std::size_t>(m)];
              if (fof && !xc) {
                exec::atomic_store_relaxed(
                    is_core[static_cast<std::size_t>(x)], std::uint8_t{1});
                uf.merge(x, y);
              } else if (xc || fof) {
                uf.merge(x, y);
              } else if (options.variant == Variant::kDbscan) {
                uf.claim(x, y);
              }
            }
          } else {
            const std::int32_t y =
                isolated_ids[static_cast<std::size_t>(pid - num_cells)];
            if (y != x) {
              if (fof) {
                exec::atomic_store_relaxed(
                    is_core[static_cast<std::size_t>(x)], std::uint8_t{1});
                exec::atomic_store_relaxed(
                    is_core[static_cast<std::size_t>(y)], std::uint8_t{1});
                uf.merge(x, y);
              } else {
                detail::resolve_pair(uf, is_core, x, y, options.variant);
              }
            }
          }
          return TraversalControl::kContinue;
            },
            &stats);
        stats.leaves_tested += scans;
        st->work.local() += stats;
      });
      st->timings.main =
          st->timer->lap("densebox/main", &st->timings.main_profile);
    }});

    staged.phases.push_back(exec::graph::Phase{
        "densebox/finalize", [this, st, result = staged.result] {
      // --- Finalization ---------------------------------------------------
      flatten(st->labels.data(), static_cast<std::int32_t>(st->n));
      std::span<std::int32_t> compact =
          workspace_.acquire<std::int32_t>(kCompact, points_->size());
      Clustering out = detail::finalize_labels_with_scratch(
          st->labels.data(), st->n, std::move(st->is_core), compact.data());
      st->timings.finalization = st->timer->lap(
          "densebox/finalize", &st->timings.finalization_profile);
      out.timings = st->timings;
      const DenseGrid<DIM>& grid = st->grid->grid;
      out.num_dense_cells = grid.num_dense_cells();
      out.points_in_dense_cells = grid.points_in_dense_cells();
      const TraversalStats total_work = st->work.combine();
      out.distance_computations = total_work.leaves_tested;
      out.index_nodes_visited = total_work.nodes_visited;
      end_run(st->snap, out, st->options);
      st->charge.reset();  // see stage(): tracker must be idle once published
      *result = std::move(out);
    }});
    return staged;
  }

  /// Batched sweep: one clustering per parameter set, in order, sharing
  /// the index and workspace (the fig4 sweeps as one call — exactly one
  /// index build for the FDBSCAN algorithm, zero reallocations after the
  /// first run). `densebox` selects FDBSCAN-DenseBox for every run.
  [[nodiscard]] std::vector<Clustering> sweep(
      std::span<const Parameters> params_sweep, const Options& options = {},
      bool densebox = false) {
    std::vector<Clustering> results;
    results.reserve(params_sweep.size());
    for (const Parameters& params : params_sweep) {
      results.push_back(densebox ? run_densebox(params, options)
                                 : run(params, options));
    }
    return results;
  }

 private:
  // Workspace slots: union-find parents and the finalization rank array.
  // Both are raw scratch fully overwritten by every run.
  enum Slot : int { kUnionFind = 0, kCompact, kNumSlots };

  struct GridEntry {
    float eps;
    float width_factor;
    std::int32_t minpts;      // dense-cell threshold: max(params.minpts, 1)
    std::uint64_t last_use;   // LRU stamp
    DenseGrid<DIM> grid;
    Bvh<DIM> bvh;             // over dense-cell boxes + isolated points
    std::vector<std::int32_t> isolated_ids;
    std::size_t tracked_bytes;
  };

  struct RunSnapshot {
    std::int64_t index_builds;
    std::int64_t grid_cache_hits;
    std::int64_t workspace_reallocs;
  };

  /// Everything a staged run carries between its phases. Owned by a
  /// shared_ptr captured in every phase closure; destroyed with the
  /// StagedRun after the finalize phase has moved the result out.
  struct StageState {
    Parameters params;
    Options options;
    std::int64_t n = 0;
    float eps2 = 0.0f;
    RunSnapshot snap{};
    std::optional<exec::ScopedCharge> charge;  // released with the state
    std::optional<exec::PhaseProfiler> timer;  // starts in the index phase
    PhaseTimings timings;
    exec::PerThread<TraversalStats> work;
    std::vector<std::uint8_t> is_core;
    std::span<std::int32_t> labels;      // workspace slot, set by main
    const Bvh<DIM>* bvh = nullptr;       // fdbscan index
    const GridEntry* grid = nullptr;     // densebox index bundle
  };

  RunSnapshot begin_run() {
    // Fast-fail for requests whose token is already raised (pre-cancelled
    // submits, zero deadlines): no kernel launches, no index work. A
    // cancellation mid-run is safe for the engine — the union-find and
    // compact scratch are workspace slots whose contents are unspecified
    // between acquires and fully rewritten by every run, and the
    // index/grid caches only publish fully-built entries — so a cancelled
    // engine produces bit-identical results on its next run.
    exec::throw_if_cancelled();
    ++counters_.runs;
    return {counters_.index_builds, counters_.grid_cache_hits,
            workspace_.reallocs()};
  }

  void end_run(const RunSnapshot& snap, Clustering& result,
               const Options& options) {
    counters_.workspace_reallocs = workspace_.reallocs();
    result.timings.engine_run = true;
    result.timings.index_rebuilds =
        static_cast<std::int32_t>(counters_.index_builds - snap.index_builds);
    result.timings.grid_cache_hits = static_cast<std::int32_t>(
        counters_.grid_cache_hits - snap.grid_cache_hits);
    result.timings.workspace_reallocs = static_cast<std::int32_t>(
        workspace_.reallocs() - snap.workspace_reallocs);
    if (options.memory) {
      result.peak_memory_bytes = options.memory->peak();
    } else if (config_.memory) {
      result.peak_memory_bytes = config_.memory->peak();
    }
  }

  const Bvh<DIM>& ensure_bvh() {
    if (!bvh_) {
      // The build runs over the SoA layout (lane-group Morton encoding);
      // the store is build-only scratch — traversal reads the wide
      // nodes' lane boxes, never the raw coordinates — so it is packed
      // here (unless a caller supplied one) and freed right after.
      if (pending_soa_.size() != static_cast<std::int64_t>(points_->size())) {
        pending_soa_.assign(*points_);
      }
      bvh_ = std::make_unique<Bvh<DIM>>(pending_soa_.view());
      pending_soa_ = PointsStore<DIM>{};
      ++counters_.index_builds;
      bvh_bytes_ = bvh_->bytes_used();
      if (config_.memory) {
        try {
          config_.memory->charge(bvh_bytes_);
        } catch (...) {
          bvh_.reset();  // over budget: unwind like a failed cudaMalloc
          throw;
        }
      }
    }
    return *bvh_;
  }

  [[nodiscard]] const GridEntry* find_grid(
      const Parameters& params, const Options& options) const noexcept {
    const std::int32_t minpts_for_dense =
        std::max(params.minpts, std::int32_t{1});
    for (const auto& entry : grid_cache_) {
      if (entry->eps == params.eps &&
          entry->width_factor == options.densebox_cell_width_factor &&
          entry->minpts == minpts_for_dense) {
        return entry.get();
      }
    }
    return nullptr;
  }

  const GridEntry& ensure_grid(const Parameters& params,
                               const Options& options) {
    const std::int32_t minpts_for_dense =
        std::max(params.minpts, std::int32_t{1});
    for (auto& entry : grid_cache_) {
      if (entry->eps == params.eps &&
          entry->width_factor == options.densebox_cell_width_factor &&
          entry->minpts == minpts_for_dense) {
        ++counters_.grid_cache_hits;
        entry->last_use = ++use_clock_;
        return *entry;
      }
    }

    // Miss: build the bundle — the index phase of the one-shot path.
    const auto& points = *points_;
    const auto n = static_cast<std::int64_t>(points.size());
    DenseGrid<DIM> grid(points,
                        GridSpec<DIM>::create(
                            scene_bounds(), params.eps,
                            options.densebox_cell_width_factor),
                        minpts_for_dense);
    const std::int32_t num_cells = grid.num_dense_cells();
    const auto& cells = grid.cells();
    const auto& perm = grid.permutation();
    const std::int32_t dense_points = grid.points_in_dense_cells();
    const auto num_isolated = static_cast<std::int32_t>(n) - dense_points;

    // Primitives: [0, num_cells) dense-cell boxes, then isolated points.
    // The box array only feeds the BVH build, so it is a temporary — the
    // cached bundle keeps just the grid, the tree and the id remap.
    std::vector<Box<DIM>> primitives(
        static_cast<std::size_t>(num_cells + num_isolated));
    exec::parallel_for("densebox/index/cell-boxes", num_cells,
                       [&](std::int64_t c) {
      primitives[static_cast<std::size_t>(c)] =
          grid.spec().cell_box(cells[static_cast<std::size_t>(c)].key);
    });
    std::vector<std::int32_t> isolated_ids(
        static_cast<std::size_t>(num_isolated));
    exec::parallel_for("densebox/index/isolated-points", num_isolated,
                       [&](std::int64_t k) {
      const std::int32_t id = perm[static_cast<std::size_t>(dense_points + k)];
      isolated_ids[static_cast<std::size_t>(k)] = id;
      const auto& p = points[static_cast<std::size_t>(id)];
      primitives[static_cast<std::size_t>(num_cells + k)] = Box<DIM>{p, p};
    });
    Bvh<DIM> bvh(primitives);
    ++counters_.index_builds;
    ++counters_.grid_builds;

    const std::size_t tracked_bytes =
        perm.size() * sizeof(std::int32_t) +
        cells.size() * sizeof(CellRange) +
        grid.dense_cell_of().size() * sizeof(std::int32_t) +
        grid.soa_bytes() +
        bvh.bytes_used() + isolated_ids.size() * sizeof(std::int32_t);
    if (config_.memory) config_.memory->charge(tracked_bytes);

    // Evict least-recently-used bundles down to capacity before inserting.
    while (static_cast<std::int32_t>(grid_cache_.size()) >=
           std::max(config_.grid_cache_capacity, std::int32_t{1})) {
      auto lru = grid_cache_.begin();
      for (auto it = grid_cache_.begin(); it != grid_cache_.end(); ++it) {
        if ((*it)->last_use < (*lru)->last_use) lru = it;
      }
      if (config_.memory) config_.memory->release((*lru)->tracked_bytes);
      ++counters_.grid_cache_evictions;
      grid_cache_.erase(lru);
    }

    grid_cache_.push_back(std::make_unique<GridEntry>(GridEntry{
        params.eps, options.densebox_cell_width_factor, minpts_for_dense,
        ++use_clock_, std::move(grid), std::move(bvh),
        std::move(isolated_ids), tracked_bytes}));
    return *grid_cache_.back();
  }

  /// Scene bounds of the (immutable) points, computed once.
  const Box<DIM>& scene_bounds() {
    if (!bounds_valid_) {
      bounds_ = bounds_of(points_->data(), points_->size());
      bounds_valid_ = true;
    }
    return bounds_;
  }

  const std::vector<Point<DIM>>* points_;
  EngineConfig config_;
  exec::Workspace workspace_;
  PointsStore<DIM> pending_soa_;   // build-only scratch, freed after use
  std::unique_ptr<Bvh<DIM>> bvh_;  // lazily built: the first run pays it
  std::size_t bvh_bytes_ = 0;
  std::vector<std::unique_ptr<GridEntry>> grid_cache_;
  std::uint64_t use_clock_ = 0;
  Box<DIM> bounds_ = Box<DIM>::empty();
  bool bounds_valid_ = false;
  EngineCounters counters_;
};

}  // namespace fdbscan
