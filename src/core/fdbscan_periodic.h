// FDBSCAN under periodic boundary conditions — the metric actually used
// for Friends-of-Friends halo finding on cosmology volumes like the
// paper's HACC snapshot (§5.2): distances follow the minimum-image
// convention, so halos wrapping across the box faces are single
// clusters.
//
// Implementation: the BVH stays Euclidean; a query point within eps of a
// face is *additionally* queried at its periodic images (up to 2^d - 1,
// but only the offsets whose faces are close). Provided the box is wider
// than 2*eps per dimension (checked), the neighbor sets found through
// distinct images are disjoint, so counts simply add and no
// deduplication is needed. Cross-boundary pairs are discovered from both
// endpoints; the union-find resolution is idempotent, so correctness is
// unaffected.
#pragma once

#include <stdexcept>
#include <vector>

#include "bvh/bvh.h"
#include "core/clustering.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "unionfind/union_find.h"

namespace fdbscan {

namespace detail {

/// Minimum-image squared distance within a periodic box.
template <int DIM>
[[nodiscard]] inline float periodic_squared_distance(
    const Point<DIM>& a, const Point<DIM>& b, const Box<DIM>& domain) noexcept {
  float s = 0.0f;
  for (int d = 0; d < DIM; ++d) {
    const float length = domain.max[d] - domain.min[d];
    float diff = a[d] - b[d];
    if (diff > 0.5f * length) diff -= length;
    if (diff < -0.5f * length) diff += length;
    s += diff * diff;
  }
  return s;
}

/// Enumerates the periodic images of p (excluding p itself) that could
/// own eps-neighbors: one per subset of dimensions where p sits within
/// eps of a face. Invokes visit(image_point).
template <int DIM, class Visit>
void for_each_periodic_image(const Point<DIM>& p, const Box<DIM>& domain,
                             float eps, Visit&& visit) {
  // Per-dimension shift candidates: 0 always; +L if near the min face,
  // -L if near the max face (box > 2 eps makes these exclusive).
  float shift[DIM];
  for (int d = 0; d < DIM; ++d) {
    const float length = domain.max[d] - domain.min[d];
    shift[d] = 0.0f;
    if (p[d] - domain.min[d] < eps) {
      shift[d] = length;
    } else if (domain.max[d] - p[d] < eps) {
      shift[d] = -length;
    }
  }
  // All non-empty subsets of shifted dimensions.
  for (unsigned mask = 1; mask < (1u << DIM); ++mask) {
    Point<DIM> image = p;
    bool applicable = true;
    for (int d = 0; d < DIM; ++d) {
      if (mask & (1u << d)) {
        if (shift[d] == 0.0f) {
          applicable = false;
          break;
        }
        image[d] += shift[d];
      }
    }
    if (applicable) visit(image);
  }
}

}  // namespace detail

/// DBSCAN with the minimum-image (periodic) metric over `domain`. Every
/// dimension of the domain must be wider than 2*eps. The returned
/// clustering has the same semantics as fdbscan()'s.
template <int DIM>
[[nodiscard]] Clustering fdbscan_periodic(const std::vector<Point<DIM>>& points,
                                          const Parameters& params,
                                          const Box<DIM>& domain,
                                          const Options& options = {}) {
  const auto n = static_cast<std::int64_t>(points.size());
  const float eps2 = params.eps * params.eps;
  if (n == 0) return {};
  for (int d = 0; d < DIM; ++d) {
    if (!(domain.max[d] - domain.min[d] > 2.0f * params.eps)) {
      throw std::invalid_argument(
          "fdbscan_periodic: every box dimension must exceed 2*eps");
    }
  }

  exec::PhaseProfiler timer;
  Bvh<DIM> bvh(points);
  PhaseTimings timings;
  timings.index_construction =
      timer.lap("periodic/index", &timings.index_construction_profile);

  // --- Preprocessing -------------------------------------------------------
  // Image queries count toward the same striped per-thread work tallies
  // as the interior traversal (they are real tree traversals).
  exec::PerThread<TraversalStats> work;
  std::vector<std::uint8_t> is_core(points.size(), 0);
  if (params.minpts <= 1) {
    exec::parallel_for("periodic/pre/all-core", n, [&](std::int64_t i) {
      is_core[static_cast<std::size_t>(i)] = 1;
    });
  } else if (params.minpts > 2) {
    exec::parallel_for("periodic/pre/core-count", n, [&](std::int64_t i) {
      const auto& x = points[static_cast<std::size_t>(i)];
      std::int32_t count = 0;
      TraversalStats stats;  // stack-local: increments stay in registers
      auto counting = [&](std::int32_t, std::int32_t) {
        ++count;
        return (options.early_exit && count >= params.minpts)
                   ? TraversalControl::kTerminate
                   : TraversalControl::kContinue;
      };
      bvh.for_each_near(x, eps2, counting, &stats);
      if (count < params.minpts || !options.early_exit) {
        detail::for_each_periodic_image(
            x, domain, params.eps, [&](const Point<DIM>& image) {
              if (count >= params.minpts && options.early_exit) return;
              bvh.for_each_near(image, eps2, counting, &stats);
            });
      }
      if (count >= params.minpts) is_core[static_cast<std::size_t>(i)] = 1;
      work.local() += stats;
    });
  }
  timings.preprocessing =
      timer.lap("periodic/pre", &timings.preprocessing_profile);

  // --- Main phase -----------------------------------------------------------
  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), static_cast<std::int32_t>(n));
  const bool fof = params.minpts == 2;

  exec::parallel_for("periodic/main/traverse-union", n, [&](std::int64_t pos) {
    const std::int32_t x = bvh.primitive_at(static_cast<std::int32_t>(pos));
    const auto& px = points[static_cast<std::size_t>(x)];
    TraversalStats stats;
    auto resolve = [&](std::int32_t, std::int32_t y) {
      if (y != x) {
        if (fof) {
          exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(x)],
                                     std::uint8_t{1});
          exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(y)],
                                     std::uint8_t{1});
          uf.merge(x, y);
        } else {
          detail::resolve_pair(uf, is_core, x, y, options.variant);
        }
      }
      return TraversalControl::kContinue;
    };
    // Interior pairs: masked traversal as in fdbscan().
    const std::int32_t mask =
        options.masked_traversal ? static_cast<std::int32_t>(pos) + 1 : 0;
    bvh.for_each_near(px, eps2, mask, resolve, &stats);
    // Cross-boundary pairs via images: unmasked (each such pair is seen
    // from both endpoints; resolution is idempotent).
    detail::for_each_periodic_image(
        px, domain, params.eps, [&](const Point<DIM>& image) {
          bvh.for_each_near(image, eps2, resolve, &stats);
        });
    work.local() += stats;
  });
  timings.main = timer.lap("periodic/main", &timings.main_profile);

  flatten(labels);
  Clustering result =
      detail::finalize_labels(std::move(labels), std::move(is_core));
  timings.finalization =
      timer.lap("periodic/finalize", &timings.finalization_profile);
  result.timings = timings;
  const TraversalStats total_work = work.combine();
  result.distance_computations = total_work.leaves_tested;
  result.index_nodes_visited = total_work.nodes_visited;
  return result;
}

/// Brute-force periodic DBSCAN (ground truth for tests).
template <int DIM>
[[nodiscard]] Clustering brute_force_periodic_dbscan(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const Box<DIM>& domain) {
  const auto n = static_cast<std::int32_t>(points.size());
  const float eps2 = params.eps * params.eps;
  constexpr std::int32_t kUnvisited = -2;
  auto neighbors_of = [&](std::int32_t i) {
    std::vector<std::int32_t> result;
    for (std::int32_t j = 0; j < n; ++j) {
      if (detail::periodic_squared_distance(
              points[static_cast<std::size_t>(i)],
              points[static_cast<std::size_t>(j)], domain) <= eps2) {
        result.push_back(j);
      }
    }
    return result;
  };
  Clustering result;
  result.labels.assign(points.size(), kUnvisited);
  result.is_core.assign(points.size(), 0);
  std::int32_t next_cluster = 0;
  for (std::int32_t i = 0; i < n; ++i) {
    if (result.labels[static_cast<std::size_t>(i)] != kUnvisited) continue;
    auto seed = neighbors_of(i);
    if (static_cast<std::int32_t>(seed.size()) < params.minpts) {
      result.labels[static_cast<std::size_t>(i)] = kNoise;
      continue;
    }
    const std::int32_t c = next_cluster++;
    result.labels[static_cast<std::size_t>(i)] = c;
    result.is_core[static_cast<std::size_t>(i)] = 1;
    std::vector<std::int32_t> queue(seed.begin(), seed.end());
    while (!queue.empty()) {
      const std::int32_t y = queue.back();
      queue.pop_back();
      auto& label = result.labels[static_cast<std::size_t>(y)];
      if (label == kNoise) label = c;
      if (label != kUnvisited) continue;
      label = c;
      auto ys = neighbors_of(y);
      if (static_cast<std::int32_t>(ys.size()) >= params.minpts) {
        result.is_core[static_cast<std::size_t>(y)] = 1;
        queue.insert(queue.end(), ys.begin(), ys.end());
      }
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

}  // namespace fdbscan
