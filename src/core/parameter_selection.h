// Parameter selection via the sorted k-dist plot — the heuristic the
// original DBSCAN paper (Ester et al. 1996, §4.2) proposes for choosing
// eps: compute each point's distance to its k-th nearest neighbor
// (k = minpts), sort descending, and read eps off the "valley" where the
// curve flattens; points left of the chosen threshold become noise.
//
// This library exposes the raw curve (for plotting) and a quantile-based
// picker: eps such that a target fraction of points would fail the
// density test.
#pragma once

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "bvh/bvh.h"
#include "exec/parallel.h"
#include "geometry/point.h"

namespace fdbscan {

/// Distance from every point to its k-th nearest *other* point
/// (self-distance excluded, matching |N_eps(x)| >= minpts with x in N:
/// the k-dist for minpts is the distance to the (minpts-1)-th other
/// neighbor). Result is indexed by point; not sorted.
template <int DIM>
[[nodiscard]] std::vector<float> k_distances(
    const std::vector<Point<DIM>>& points, std::int32_t minpts) {
  if (minpts < 2) {
    throw std::invalid_argument("k_distances: minpts must be >= 2");
  }
  const auto n = static_cast<std::int64_t>(points.size());
  std::vector<float> result(points.size(),
                            std::numeric_limits<float>::infinity());
  if (n < 2) return result;
  Bvh<DIM> bvh(points);
  const std::int32_t k = std::min<std::int32_t>(
      minpts, static_cast<std::int32_t>(n));  // includes self at distance 0
  exec::parallel_for("kdist/knn", n, [&](std::int64_t i) {
    const auto nn = bvh.nearest(points[static_cast<std::size_t>(i)], k);
    // nn[0] is the point itself (distance 0); the k-dist is the last.
    result[static_cast<std::size_t>(i)] = std::sqrt(nn.back().second);
  });
  return result;
}

/// Sorted (descending) k-dist curve — Ester et al.'s plot.
template <int DIM>
[[nodiscard]] std::vector<float> sorted_k_distances(
    const std::vector<Point<DIM>>& points, std::int32_t minpts) {
  auto dists = k_distances(points, minpts);
  std::sort(dists.begin(), dists.end(), std::greater<float>());
  return dists;
}

/// Suggests eps for a given minpts: the k-dist value at the chosen noise
/// quantile (default: accept ~2% of points as noise). Clustering with
/// the returned eps makes roughly `noise_fraction` of the points fail
/// the core test in their own neighborhood.
template <int DIM>
[[nodiscard]] float suggest_eps(const std::vector<Point<DIM>>& points,
                                std::int32_t minpts,
                                double noise_fraction = 0.02) {
  if (points.empty()) {
    throw std::invalid_argument("suggest_eps: empty input");
  }
  if (noise_fraction < 0.0 || noise_fraction >= 1.0) {
    throw std::invalid_argument("suggest_eps: noise_fraction must be in [0,1)");
  }
  const auto curve = sorted_k_distances(points, minpts);
  const auto idx = static_cast<std::size_t>(
      noise_fraction * static_cast<double>(curve.size()));
  return curve[std::min(idx, curve.size() - 1)];
}

}  // namespace fdbscan
