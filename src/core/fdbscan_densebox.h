// FDBSCAN-DenseBox (§4.2): FDBSCAN with special treatment of dense
// regions. A Cartesian grid with cell length eps/sqrt(d) is superimposed
// over the domain; cells holding >= minpts points ("dense cells") consist
// solely of core points of a single cluster, so
//   * no distance computations are spent among points of the same cell,
//   * the BVH is built over a *mixed* set of primitives — the boxes of
//     the dense cells plus the individual points outside them — which
//     both shrinks the tree and makes merging dense cells cheap.
//
// Preprocessing only examines points outside dense cells (everything
// inside is core by construction). The main phase first unions each dense
// cell internally, then runs the tree search for all points: a discovered
// dense box is resolved by scanning its members until one eps-close point
// is found (a single witness suffices — all members share a cluster); a
// discovered isolated point is resolved per Algorithm 3.
#pragma once

#include <vector>

#include "bvh/bvh.h"
#include "core/clustering.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "geometry/point.h"
#include "grid/dense_grid.h"

namespace fdbscan {

template <int DIM>
[[nodiscard]] Clustering fdbscan_densebox(const std::vector<Point<DIM>>& points,
                                          const Parameters& params,
                                          const Options& options = {}) {
  const auto n = static_cast<std::int64_t>(points.size());
  const float eps2 = params.eps * params.eps;
  if (n == 0) return {};

  exec::ScopedCharge charge(
      options.memory,
      points.size() * (sizeof(std::int32_t) + sizeof(std::uint8_t)));
  exec::PhaseProfiler timer;

  // --- Index construction: grid, then BVH over mixed primitives -----------
  const std::int32_t minpts_for_dense = std::max(params.minpts, std::int32_t{1});
  DenseGrid<DIM> grid(points,
                      GridSpec<DIM>::create(
                          bounds_of(points.data(), points.size()), params.eps,
                          options.densebox_cell_width_factor),
                      minpts_for_dense);
  const std::int32_t num_cells = grid.num_dense_cells();
  const auto& cells = grid.cells();
  const auto& perm = grid.permutation();
  const std::int32_t dense_points = grid.points_in_dense_cells();
  const auto num_isolated =
      static_cast<std::int32_t>(n) - dense_points;  // points outside dense cells

  exec::ScopedCharge grid_charge(
      options.memory,
      perm.size() * sizeof(std::int32_t) + cells.size() * sizeof(CellRange) +
          grid.dense_cell_of().size() * sizeof(std::int32_t));

  // Primitives: [0, num_cells) dense-cell boxes, then isolated points.
  std::vector<Box<DIM>> primitives(
      static_cast<std::size_t>(num_cells + num_isolated));
  exec::parallel_for("densebox/index/cell-boxes", num_cells, [&](std::int64_t c) {
    primitives[static_cast<std::size_t>(c)] =
        grid.spec().cell_box(cells[static_cast<std::size_t>(c)].key);
  });
  std::vector<std::int32_t> isolated_ids(static_cast<std::size_t>(num_isolated));
  exec::parallel_for("densebox/index/isolated-points", num_isolated, [&](std::int64_t k) {
    const std::int32_t id =
        perm[static_cast<std::size_t>(dense_points + k)];
    isolated_ids[static_cast<std::size_t>(k)] = id;
    const auto& p = points[static_cast<std::size_t>(id)];
    primitives[static_cast<std::size_t>(num_cells + k)] = Box<DIM>{p, p};
  });

  Bvh<DIM> bvh(primitives);
  exec::ScopedCharge bvh_charge(
      options.memory,
      bvh.bytes_used() + isolated_ids.size() * sizeof(std::int32_t));
  PhaseTimings timings;
  timings.index_construction =
      timer.lap("densebox/index", &timings.index_construction_profile);

  // --- Preprocessing -------------------------------------------------------
  // Work accounting: explicit within() scans over dense-cell members plus
  // every leaf-primitive bounds test (exact for point primitives, a
  // box-distance test for dense-box primitives) count as distance
  // computations; internal node tests count as index work. Tallies go
  // into striped per-thread slots (leaves_tested absorbs the member
  // scans) — never a shared atomic in the traversal loop.
  exec::PerThread<TraversalStats> work;
  std::vector<std::uint8_t> is_core(points.size(), 0);
  exec::parallel_for("densebox/pre/dense-core", dense_points, [&](std::int64_t k) {
    is_core[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] = 1;
  });
  if (params.minpts <= 1) {
    exec::parallel_for("densebox/pre/all-core", n, [&](std::int64_t i) {
      is_core[static_cast<std::size_t>(i)] = 1;
    });
  } else if (params.minpts > 2) {
    exec::parallel_for("densebox/pre/core-count", num_isolated, [&](std::int64_t k) {
      const std::int32_t x = isolated_ids[static_cast<std::size_t>(k)];
      const auto& px = points[static_cast<std::size_t>(x)];
      std::int32_t count = 0;  // includes x itself (found as a primitive)
      std::int64_t scans = 0;
      TraversalStats stats;  // stack-local: increments stay in registers
      bvh.for_each_near(
          px, eps2, 0,
          [&](std::int32_t, std::int32_t pid) {
            if (pid < num_cells) {
              const CellRange& cell = cells[static_cast<std::size_t>(pid)];
              for (std::int32_t m = cell.begin; m < cell.end; ++m) {
                const std::int32_t y = perm[static_cast<std::size_t>(m)];
                ++scans;
                if (within(px, points[static_cast<std::size_t>(y)], eps2)) {
                  ++count;
                  if (options.early_exit && count >= params.minpts) {
                    return TraversalControl::kTerminate;
                  }
                }
              }
            } else {
              ++count;  // point primitive: bounds test already was exact
              if (options.early_exit && count >= params.minpts) {
                return TraversalControl::kTerminate;
              }
            }
            return TraversalControl::kContinue;
          },
          &stats);
      if (count >= params.minpts) is_core[static_cast<std::size_t>(x)] = 1;
      stats.leaves_tested += scans;
      work.local() += stats;
    });
  }
  timings.preprocessing =
      timer.lap("densebox/pre", &timings.preprocessing_profile);

  // --- Main phase -----------------------------------------------------------
  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), static_cast<std::int32_t>(n));
  const bool fof = params.minpts == 2;

  // Union every dense cell internally (all members are one cluster).
  exec::parallel_for("densebox/main/cell-union", num_cells, [&](std::int64_t c) {
    const CellRange& cell = cells[static_cast<std::size_t>(c)];
    const std::int32_t first = perm[static_cast<std::size_t>(cell.begin)];
    for (std::int32_t m = cell.begin + 1; m < cell.end; ++m) {
      uf.merge(first, perm[static_cast<std::size_t>(m)]);
    }
  });

  // Tree search for all points (dense-cell members included: they are the
  // ones stitching adjacent cells together).
  exec::parallel_for("densebox/main/traverse-union", n, [&](std::int64_t i) {
    const auto x = static_cast<std::int32_t>(i);
    const auto& px = points[static_cast<std::size_t>(x)];
    const std::int32_t own_cell =
        grid.dense_cell_of()[static_cast<std::size_t>(x)];
    // Atomic: in the FoF path other threads set is_core[x] concurrently.
    const bool xc =
        exec::atomic_load_relaxed(is_core[static_cast<std::size_t>(x)]) != 0;
    std::int64_t scans = 0;
    TraversalStats stats;
    bvh.for_each_near(
        px, eps2, 0,
        [&](std::int32_t, std::int32_t pid) {
      if (pid < num_cells) {
        if (pid == own_cell) return TraversalControl::kContinue;
        const CellRange& cell = cells[static_cast<std::size_t>(pid)];
        // One eps-close witness connects x to the whole (core) cell.
        for (std::int32_t m = cell.begin; m < cell.end; ++m) {
          const std::int32_t y = perm[static_cast<std::size_t>(m)];
          ++scans;
          if (within(px, points[static_cast<std::size_t>(y)], eps2)) {
            if (fof && !xc) {
              exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(x)],
                                         std::uint8_t{1});
              uf.merge(x, y);
            } else if (xc || fof) {
              uf.merge(x, y);
            } else if (options.variant == Variant::kDbscan) {
              uf.claim(x, y);
            }
            break;
          }
        }
      } else {
        const std::int32_t y = isolated_ids[static_cast<std::size_t>(pid - num_cells)];
        if (y != x) {
          if (fof) {
            exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(x)],
                                       std::uint8_t{1});
            exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(y)],
                                       std::uint8_t{1});
            uf.merge(x, y);
          } else {
            detail::resolve_pair(uf, is_core, x, y, options.variant);
          }
        }
      }
      return TraversalControl::kContinue;
        },
        &stats);
    stats.leaves_tested += scans;
    work.local() += stats;
  });
  timings.main = timer.lap("densebox/main", &timings.main_profile);

  // --- Finalization ---------------------------------------------------------
  flatten(labels);
  Clustering result =
      detail::finalize_labels(std::move(labels), std::move(is_core));
  timings.finalization =
      timer.lap("densebox/finalize", &timings.finalization_profile);
  result.timings = timings;
  result.num_dense_cells = num_cells;
  result.points_in_dense_cells = dense_points;
  const TraversalStats total_work = work.combine();
  result.distance_computations = total_work.leaves_tested;
  result.index_nodes_visited = total_work.nodes_visited;
  if (options.memory) result.peak_memory_bytes = options.memory->peak();
  return result;
}

}  // namespace fdbscan
