// FDBSCAN-DenseBox (§4.2): FDBSCAN with special treatment of dense
// regions. A Cartesian grid with cell length eps/sqrt(d) is superimposed
// over the domain; cells holding >= minpts points ("dense cells") consist
// solely of core points of a single cluster, so
//   * no distance computations are spent among points of the same cell,
//   * the BVH is built over a *mixed* set of primitives — the boxes of
//     the dense cells plus the individual points outside them — which
//     both shrinks the tree and makes merging dense cells cheap.
//
// Preprocessing only examines points outside dense cells (everything
// inside is core by construction). The main phase first unions each dense
// cell internally, then runs the tree search for all points: a discovered
// dense box is resolved by scanning its members until one eps-close point
// is found (a single witness suffices — all members share a cluster); a
// discovered isolated point is resolved per Algorithm 3.
//
// The kernels live in Engine::run_densebox() (core/engine.h); this free
// function is the one-shot convenience wrapper — every call rebuilds the
// grid and mixed BVH. Callers re-clustering the same points should hold
// an Engine, whose bundle cache skips the index phase on repeats.
#pragma once

#include <vector>

#include "core/engine.h"

namespace fdbscan {

template <int DIM>
[[nodiscard]] Clustering fdbscan_densebox(const std::vector<Point<DIM>>& points,
                                          const Parameters& params,
                                          const Options& options = {}) {
  Engine<DIM> engine(points, EngineConfig{.memory = options.memory});
  return engine.run_densebox(params, options);
}

}  // namespace fdbscan
