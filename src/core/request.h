// One composable request description for every clustering entry point
// (DESIGN.md §10/§14).
//
// Before this header existed the request surface was split: the service
// took SubmitOptions{options, method, shards, deadline_ms, token} plus a
// per-call Parameters, while cluster(), cluster_sharded() and
// distributed_cluster() each re-implemented the scalar validation
// inline. RequestSpec folds the whole request into one value and
// validate_spec()/validate_shard_count() are the single validation path
// every front door shares — the service validates the same spec at
// submit time that a one-shot cluster() call validates inline, and the
// session API (service/service.h) pins one spec per session.
//
// Layering: deadline_ms and token are *service* semantics (a direct
// cluster(points, spec) call ignores them — there is no queue to wait in
// and the caller can install its own CancelScope), but they live here so
// one spec value can travel from a library call site into a submit()
// without translation.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "core/clustering.h"
#include "core/status.h"
#include "exec/cancel.h"

namespace fdbscan {

/// Which algorithm a request dispatches to.
enum class Method : std::uint8_t {
  kAuto,      ///< dense-fraction heuristic (core/auto_select.h)
  kFdbscan,   ///< always plain FDBSCAN
  kDensebox,  ///< always FDBSCAN-DenseBox
};

/// Sentinel for "no deadline" in RequestSpec::deadline_ms.
inline constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

/// Everything one clustering request carries, minus the points.
struct RequestSpec {
  Parameters params{};
  Options options{};
  Method method = Method::kAuto;
  /// Shard count: 0 = use the executing context's default
  /// (ServiceConfig::shards at the service; single-engine for direct
  /// calls), 1 = single-engine, > 1 = sharded execution (always plain
  /// FDBSCAN — the decomposition is FDBSCAN's, `method` is ignored).
  /// Negative values reject with kInvalidShards.
  std::int32_t shards = 0;
  /// Total latency budget (queue wait + run) in milliseconds, enforced
  /// by the service watchdog. kNoDeadline disables it; a value <= 0
  /// fails fast with kDeadlineExceeded before any kernel runs. Ignored
  /// outside the service.
  double deadline_ms = kNoDeadline;
  /// Caller-held cancellation handle; the service creates a private one
  /// when absent. A token may observe at most one in-flight request at a
  /// time — a second submit sharing it rejects with kTokenBusy
  /// (DESIGN.md §10). Ignored outside the service (direct callers scope
  /// their own tokens with exec::CancelScope).
  std::shared_ptr<exec::CancelToken> token{};
};

/// The scalar half of validate_input: checks (params, options) without
/// touching the points. O(1) — the service layer runs this at submit
/// time and defers the O(n) coordinate scan to the dispatcher (once per
/// pooled dataset).
[[nodiscard]] inline std::optional<Error> validate_parameters(
    const Parameters& params, const Options& options = {}) {
  if (!(params.eps > 0.0f) || !std::isfinite(params.eps)) {
    return Error{ErrorCode::kInvalidEps,
                 "eps must be a finite positive number, got " +
                     std::to_string(params.eps)};
  }
  if (params.minpts < 1) {
    return Error{ErrorCode::kInvalidMinpts,
                 "minpts must be >= 1, got " + std::to_string(params.minpts)};
  }
  const float f = options.densebox_cell_width_factor;
  if (!(f > 0.0f) || !(f <= 1.0f)) {
    // > 1 would break the cell-diameter <= eps invariant dense cells rely
    // on (every pair inside one cell must be eps-close).
    return Error{ErrorCode::kInvalidCellWidthFactor,
                 "densebox_cell_width_factor must be in (0, 1], got " +
                     std::to_string(f)};
  }
  return std::nullopt;
}

/// Shard/rank-count check shared by cluster_sharded(),
/// distributed_cluster() and the service: counts below `minimum`
/// (1 for resolved requests, 0 where "service default" is still legal)
/// reject with kInvalidShards.
[[nodiscard]] inline std::optional<Error> validate_shard_count(
    std::int64_t shards, std::int64_t minimum = 1,
    const char* what = "shards") {
  if (shards < minimum) {
    return Error{ErrorCode::kInvalidShards,
                 std::string(what) + " must be >= " + std::to_string(minimum) +
                     ", got " + std::to_string(shards)};
  }
  return std::nullopt;
}

/// The single scalar validation path for a whole RequestSpec: parameter
/// ranges plus the shard count (0 = "context default" stays legal).
[[nodiscard]] inline std::optional<Error> validate_spec(
    const RequestSpec& spec) {
  if (auto error = validate_parameters(spec.params, spec.options)) {
    return error;
  }
  return validate_shard_count(spec.shards, 0);
}

}  // namespace fdbscan
