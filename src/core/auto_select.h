// Heuristic algorithm selection — the paper's first future-work item
// (§6): "we envision using a heuristic to switch between FDBSCAN and
// FDBSCAN-DenseBox for a given problem".
//
// The driver of the trade-off (§5) is the dense-cell population: when a
// large share of the points lives in cells of the eps/sqrt(d) grid with
// >= minpts points, DenseBox collapses their pairwise work; when the
// share is small, DenseBox only pays grid construction and mixed-tree
// overhead (Fig. 6's crossover). The heuristic estimates that share on a
// random subsample — cell occupancy statistics concentrate fast, so a
// few thousand points suffice — and dispatches on a threshold calibrated
// with the ablation bench.
#pragma once

#include <random>
#include <vector>

#include "core/clustering.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "grid/dense_grid.h"

namespace fdbscan {

struct AutoSelectConfig {
  /// Subsample size used for the estimate.
  std::int32_t sample_size = 4096;
  /// Dispatch to DenseBox when the estimated dense-point fraction is at
  /// least this threshold (Fig. 6: the crossover sits where the dense
  /// population stops paying for the grid overhead).
  double densebox_threshold = 0.10;
  std::uint64_t seed = 0x5eed;
};

/// Estimated fraction of points lying in dense cells, from a subsample.
/// The subsample sees proportionally fewer points per cell, so the
/// occupancy threshold is scaled by the sampling ratio.
template <int DIM>
[[nodiscard]] double estimate_dense_fraction(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const AutoSelectConfig& config = {}) {
  const auto n = static_cast<std::int64_t>(points.size());
  if (n == 0) return 0.0;
  const std::int64_t m = std::min<std::int64_t>(config.sample_size, n);
  std::vector<Point<DIM>> sample;
  if (m == n) {
    sample = points;
  } else {
    sample.reserve(static_cast<std::size_t>(m));
    std::mt19937_64 rng(config.seed);
    for (std::int64_t i = 0; i < m; ++i) {
      sample.push_back(points[static_cast<std::size_t>(
          rng() % static_cast<std::uint64_t>(n))]);
    }
  }
  // A cell with k points in the full set holds ~k*m/n sample points:
  // rescale minpts accordingly (at least 2 so "dense" keeps meaning).
  const double ratio = static_cast<double>(m) / static_cast<double>(n);
  const auto scaled_minpts = std::max<std::int32_t>(
      2, static_cast<std::int32_t>(params.minpts * ratio + 0.5));
  DenseGrid<DIM> grid(sample, params.eps, scaled_minpts);
  return static_cast<double>(grid.points_in_dense_cells()) /
         static_cast<double>(m);
}

/// Result of the heuristic dispatch.
template <int DIM>
struct AutoSelection {
  Clustering clustering;
  bool used_densebox = false;
  double estimated_dense_fraction = 0.0;
};

/// Runs FDBSCAN-DenseBox when the dense-cell population justifies the
/// grid overhead, plain FDBSCAN otherwise. Results are identical either
/// way (both implement the same specification); only performance differs.
template <int DIM>
[[nodiscard]] AutoSelection<DIM> fdbscan_auto(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const Options& options = {}, const AutoSelectConfig& config = {}) {
  AutoSelection<DIM> result;
  result.estimated_dense_fraction =
      estimate_dense_fraction(points, params, config);
  result.used_densebox =
      result.estimated_dense_fraction >= config.densebox_threshold;
  result.clustering = result.used_densebox
                          ? fdbscan_densebox(points, params, options)
                          : fdbscan(points, params, options);
  return result;
}

}  // namespace fdbscan
