// Heuristic algorithm selection — the paper's first future-work item
// (§6): "we envision using a heuristic to switch between FDBSCAN and
// FDBSCAN-DenseBox for a given problem".
//
// The driver of the trade-off (§5) is the dense-cell population: when a
// large share of the points lives in cells of the eps/sqrt(d) grid with
// >= minpts points, DenseBox collapses their pairwise work; when the
// share is small, DenseBox only pays grid construction and mixed-tree
// overhead (Fig. 6's crossover). The heuristic estimates that share on a
// random subsample — cell occupancy statistics concentrate fast, so a
// few thousand points suffice — and dispatches on a threshold calibrated
// with the ablation bench.
#pragma once

#include <random>
#include <unordered_map>
#include <vector>

#include "core/clustering.h"
#include "core/engine.h"
#include "core/fdbscan.h"
#include "core/fdbscan_densebox.h"
#include "grid/dense_grid.h"

namespace fdbscan {

struct AutoSelectConfig {
  /// Subsample size used for the estimate.
  std::int32_t sample_size = 4096;
  /// Dispatch to DenseBox when the estimated dense-point fraction is at
  /// least this threshold (Fig. 6: the crossover sits where the dense
  /// population stops paying for the grid overhead).
  double densebox_threshold = 0.10;
  std::uint64_t seed = 0x5eed;
};

namespace detail {

/// Draw m of [0, n) uniformly *without replacement* via a partial
/// Fisher–Yates over a virtual identity array: only touched entries are
/// materialized in a hash map, so the shuffle costs O(m) regardless of n.
/// The index at each step is drawn with std::uniform_int_distribution —
/// rejection-sampled, unlike the `rng() % range` it replaces, which both
/// biased small indices (2^64 mod range leftovers) and, sampling *with*
/// replacement, produced duplicate points that inflated cell occupancies
/// and thus the dense-fraction estimate.
inline std::vector<std::int64_t> sample_without_replacement(
    std::int64_t n, std::int64_t m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::unordered_map<std::int64_t, std::int64_t> displaced;
  displaced.reserve(static_cast<std::size_t>(2 * m));
  const auto at = [&](std::int64_t i) {
    const auto it = displaced.find(i);
    return it == displaced.end() ? i : it->second;
  };
  std::vector<std::int64_t> picks;
  picks.reserve(static_cast<std::size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    std::uniform_int_distribution<std::int64_t> dist(i, n - 1);
    const std::int64_t j = dist(rng);
    picks.push_back(at(j));
    displaced[j] = at(i);  // swap the "front" element into the used slot
  }
  return picks;
}

}  // namespace detail

/// Estimated fraction of points lying in dense cells, from a subsample.
/// The subsample sees proportionally fewer points per cell, so the
/// occupancy threshold is scaled by the sampling ratio.
template <int DIM>
[[nodiscard]] double estimate_dense_fraction(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const AutoSelectConfig& config = {}) {
  const auto n = static_cast<std::int64_t>(points.size());
  if (n == 0) return 0.0;
  const std::int64_t m = std::min<std::int64_t>(config.sample_size, n);
  std::vector<Point<DIM>> sample;
  if (m == n) {
    sample = points;
  } else {
    sample.reserve(static_cast<std::size_t>(m));
    for (const std::int64_t i :
         detail::sample_without_replacement(n, m, config.seed)) {
      sample.push_back(points[static_cast<std::size_t>(i)]);
    }
  }
  // A cell with k points in the full set holds ~k*m/n sample points:
  // rescale minpts accordingly (at least 2 so "dense" keeps meaning).
  const double ratio = static_cast<double>(m) / static_cast<double>(n);
  const auto scaled_minpts = std::max<std::int32_t>(
      2, static_cast<std::int32_t>(params.minpts * ratio + 0.5));
  DenseGrid<DIM> grid(sample, params.eps, scaled_minpts);
  return static_cast<double>(grid.points_in_dense_cells()) /
         static_cast<double>(m);
}

/// Result of the heuristic dispatch.
template <int DIM>
struct AutoSelection {
  Clustering clustering;
  bool used_densebox = false;
  double estimated_dense_fraction = 0.0;
};

/// Heuristic dispatch running on an existing Engine: FDBSCAN-DenseBox
/// when the dense-cell population justifies the grid overhead, plain
/// FDBSCAN otherwise. Results are identical either way (both implement
/// the same specification); only performance differs. Reuses the
/// engine's cached indexes and workspace like any other run.
template <int DIM>
[[nodiscard]] AutoSelection<DIM> fdbscan_auto(
    Engine<DIM>& engine, const Parameters& params, const Options& options = {},
    const AutoSelectConfig& config = {}) {
  AutoSelection<DIM> result;
  result.estimated_dense_fraction =
      estimate_dense_fraction(engine.points(), params, config);
  result.used_densebox =
      result.estimated_dense_fraction >= config.densebox_threshold;
  result.clustering = result.used_densebox
                          ? engine.run_densebox(params, options)
                          : engine.run(params, options);
  return result;
}

/// One-shot heuristic dispatch over a bare point set.
template <int DIM>
[[nodiscard]] AutoSelection<DIM> fdbscan_auto(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const Options& options = {}, const AutoSelectConfig& config = {}) {
  Engine<DIM> engine(points, EngineConfig{.memory = options.memory});
  return fdbscan_auto(engine, params, options, config);
}

}  // namespace fdbscan
