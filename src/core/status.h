// Typed errors for the validated clustering entry point (core/cluster.h).
//
// The algorithm templates themselves (fdbscan(), fdbscan_densebox(), the
// Engine) follow the GPU convention of trusting their inputs: eps <= 0 or
// a NaN coordinate silently produces a garbage clustering, exactly as a
// kernel launch would. `fdbscan::cluster()` is the checked front door for
// callers who want malformed input rejected with a typed error instead —
// Expected<Clustering, Error> is the C++20 stand-in for std::expected
// (C++23), carrying either the result or an ErrorCode plus a
// human-readable message naming the offending value.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>

namespace fdbscan {

/// Why an input was rejected or a request did not complete. The first
/// group is input validation (core/cluster.h); the second group is the
/// serving surface (service/service.h).
enum class ErrorCode : std::uint8_t {
  kInvalidEps,              ///< eps is not a finite positive number
  kInvalidMinpts,           ///< minpts < 1
  kNonFinitePoint,          ///< a coordinate is NaN or infinite
  kInvalidCellWidthFactor,  ///< densebox_cell_width_factor outside (0, 1]
  kInvalidShards,           ///< shard / rank count < 1
  kQueueFull,               ///< service request queue at capacity
  kCancelled,               ///< request cancelled via its CancelToken
  kDeadlineExceeded,        ///< request deadline elapsed before completion
  kInternal,                ///< unexpected failure inside a dispatcher
  kTokenBusy,               ///< CancelToken already bound to an in-flight request
  kInvalidSession,          ///< session unknown, closed, or failed to open
  kSessionLimit,            ///< open-session table at capacity
  kGraphCycle,              ///< task graph contains a dependency cycle
};

[[nodiscard]] constexpr const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidEps: return "InvalidEps";
    case ErrorCode::kInvalidMinpts: return "InvalidMinpts";
    case ErrorCode::kNonFinitePoint: return "NonFinitePoint";
    case ErrorCode::kInvalidCellWidthFactor: return "InvalidCellWidthFactor";
    case ErrorCode::kInvalidShards: return "InvalidShards";
    case ErrorCode::kQueueFull: return "QueueFull";
    case ErrorCode::kCancelled: return "Cancelled";
    case ErrorCode::kDeadlineExceeded: return "DeadlineExceeded";
    case ErrorCode::kInternal: return "Internal";
    case ErrorCode::kTokenBusy: return "TokenBusy";
    case ErrorCode::kInvalidSession: return "InvalidSession";
    case ErrorCode::kSessionLimit: return "SessionLimit";
    case ErrorCode::kGraphCycle: return "GraphCycle";
  }
  return "UnknownError";
}

/// A typed validation error: machine-dispatchable code + diagnostic text.
struct Error {
  ErrorCode code;
  std::string message;
};

/// Minimal expected-type: holds either a T (success) or an E (error).
/// Implicitly constructible from both, so `return result;` and
/// `return Error{...};` both work inside functions returning Expected.
template <class T, class E = Error>
class Expected {
 public:
  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : state_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool has_value() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  /// Access the value; throws std::logic_error carrying the error message
  /// if this Expected holds an error (the analogue of
  /// std::bad_expected_access for callers who skip the check).
  [[nodiscard]] T& value() & {
    ensure_value();
    return std::get<0>(state_);
  }
  [[nodiscard]] const T& value() const& {
    ensure_value();
    return std::get<0>(state_);
  }
  [[nodiscard]] T&& value() && {
    ensure_value();
    return std::get<0>(std::move(state_));
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// Access the error; only valid when has_value() is false.
  [[nodiscard]] const E& error() const { return std::get<1>(state_); }

 private:
  void ensure_value() const {
    if (!has_value()) {
      if constexpr (std::is_same_v<E, Error>) {
        throw std::logic_error("Expected::value() on error: " +
                               std::get<1>(state_).message);
      } else {
        throw std::logic_error("Expected::value() called on an error");
      }
    }
  }

  std::variant<T, E> state_;
};

}  // namespace fdbscan
