// Ground-truth reference DBSCAN and clustering-equivalence checking.
//
// DBSCAN's output is unique up to (a) cluster renaming and (b) the cluster
// a border point reachable from several clusters lands in (§2.1: "may
// differ in their handling of such border points"). The checker therefore
// verifies: identical core flags, identical noise sets, an exact bijection
// between the cluster partitions restricted to core points, and for every
// border point that its assigned cluster contains an eps-close core point.
#pragma once

#include <cstdint>
#include <deque>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/clustering.h"
#include "geometry/point.h"

namespace fdbscan {

/// O(n^2) sequential DBSCAN (Algorithm 1, no spatial index). The ground
/// truth for every test in the repository — deliberately written in the
/// most literal breadth-first style.
template <int DIM>
[[nodiscard]] Clustering brute_force_dbscan(const std::vector<Point<DIM>>& points,
                                            const Parameters& params,
                                            Variant variant = Variant::kDbscan) {
  const auto n = static_cast<std::int32_t>(points.size());
  const float eps2 = params.eps * params.eps;
  constexpr std::int32_t kUnvisited = -2;

  auto neighbors_of = [&](std::int32_t i) {
    std::vector<std::int32_t> result;
    const auto& p = points[static_cast<std::size_t>(i)];
    for (std::int32_t j = 0; j < n; ++j) {
      if (within(p, points[static_cast<std::size_t>(j)], eps2)) {
        result.push_back(j);  // includes i itself, per |N_eps(x)|
      }
    }
    return result;
  };

  Clustering result;
  result.labels.assign(points.size(), kUnvisited);
  result.is_core.assign(points.size(), 0);
  std::int32_t next_cluster = 0;

  for (std::int32_t i = 0; i < n; ++i) {
    if (result.labels[static_cast<std::size_t>(i)] != kUnvisited) continue;
    auto seed_neighbors = neighbors_of(i);
    if (static_cast<std::int32_t>(seed_neighbors.size()) < params.minpts) {
      result.labels[static_cast<std::size_t>(i)] = kNoise;
      continue;
    }
    const std::int32_t c = next_cluster++;
    result.labels[static_cast<std::size_t>(i)] = c;
    result.is_core[static_cast<std::size_t>(i)] = 1;
    std::deque<std::int32_t> queue(seed_neighbors.begin(), seed_neighbors.end());
    while (!queue.empty()) {
      const std::int32_t y = queue.front();
      queue.pop_front();
      auto& label = result.labels[static_cast<std::size_t>(y)];
      if (label == kNoise) label = c;  // previously mis-marked border point
      if (label != kUnvisited) continue;
      label = c;
      auto ys = neighbors_of(y);
      if (static_cast<std::int32_t>(ys.size()) >= params.minpts) {
        result.is_core[static_cast<std::size_t>(y)] = 1;
        queue.insert(queue.end(), ys.begin(), ys.end());
      }
    }
  }
  if (variant == Variant::kDbscanStar) {
    // DBSCAN*: border points (clustered, non-core) are noise.
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (result.is_core[i] == 0) result.labels[i] = kNoise;
    }
  }
  result.num_clusters = next_cluster;
  return result;
}

/// Result of an equivalence check; `ok` plus a human-readable reason.
struct CheckResult {
  bool ok = true;
  std::string message;

  static CheckResult failure(std::string why) { return {false, std::move(why)}; }
  explicit operator bool() const noexcept { return ok; }
};

/// Verifies that `candidate` is a valid DBSCAN output for (points,
/// params) given the reference clustering (see file comment for the
/// tolerance on border points).
template <int DIM>
[[nodiscard]] CheckResult equivalent_clusterings(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const Clustering& reference, const Clustering& candidate,
    Variant variant = Variant::kDbscan) {
  const auto n = points.size();
  const float eps2 = params.eps * params.eps;
  if (candidate.labels.size() != n || candidate.is_core.size() != n) {
    return CheckResult::failure("size mismatch");
  }
  std::ostringstream why;
  for (std::size_t i = 0; i < n; ++i) {
    if (reference.is_core[i] != candidate.is_core[i]) {
      why << "core flag mismatch at point " << i << ": reference "
          << int(reference.is_core[i]) << " vs candidate "
          << int(candidate.is_core[i]);
      return CheckResult::failure(why.str());
    }
    if ((reference.labels[i] == kNoise) != (candidate.labels[i] == kNoise)) {
      why << "noise mismatch at point " << i << ": reference "
          << reference.labels[i] << " vs candidate " << candidate.labels[i];
      return CheckResult::failure(why.str());
    }
  }
  // Core partition must be a bijection.
  std::unordered_map<std::int64_t, std::int32_t> ref_to_cand, cand_to_ref;
  for (std::size_t i = 0; i < n; ++i) {
    if (reference.is_core[i] == 0) continue;
    const std::int32_t r = reference.labels[i];
    const std::int32_t c = candidate.labels[i];
    auto [it1, fresh1] = ref_to_cand.try_emplace(r, c);
    if (!fresh1 && it1->second != c) {
      why << "core point " << i << " splits reference cluster " << r
          << " across candidate clusters " << it1->second << " and " << c;
      return CheckResult::failure(why.str());
    }
    auto [it2, fresh2] = cand_to_ref.try_emplace(c, r);
    if (!fresh2 && it2->second != r) {
      why << "core point " << i << " merges reference clusters " << it2->second
          << " and " << r << " into candidate cluster " << c;
      return CheckResult::failure(why.str());
    }
  }
  // Border points: assignment may differ between valid outputs, but the
  // chosen cluster must contain an eps-close core point.
  for (std::size_t i = 0; i < n; ++i) {
    if (candidate.is_core[i] != 0 || candidate.labels[i] == kNoise) continue;
    if (variant == Variant::kDbscanStar) {
      why << "border point " << i << " is clustered under DBSCAN*";
      return CheckResult::failure(why.str());
    }
    bool witnessed = false;
    for (std::size_t j = 0; j < n && !witnessed; ++j) {
      witnessed = candidate.is_core[j] != 0 &&
                  candidate.labels[j] == candidate.labels[i] &&
                  within(points[i], points[j], eps2);
    }
    if (!witnessed) {
      why << "border point " << i << " assigned to candidate cluster "
          << candidate.labels[i] << " with no eps-close core point in it";
      return CheckResult::failure(why.str());
    }
  }
  if (reference.num_clusters != candidate.num_clusters) {
    why << "cluster count mismatch: reference " << reference.num_clusters
        << " vs candidate " << candidate.num_clusters;
    return CheckResult::failure(why.str());
  }
  return {};
}

/// Convenience: checks `candidate` directly against the brute-force
/// ground truth.
template <int DIM>
[[nodiscard]] CheckResult matches_ground_truth(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const Clustering& candidate, Variant variant = Variant::kDbscan) {
  const Clustering reference = brute_force_dbscan(points, params, variant);
  return equivalent_clusterings(points, params, reference, candidate, variant);
}

}  // namespace fdbscan
