// Validated clustering entry point — the checked front door of the
// library (satellite of DESIGN.md §9's engine redesign).
//
// The algorithm templates (fdbscan, fdbscan_densebox, Engine::run) trust
// their inputs the way a kernel launch does: nothing checks eps or scans
// for NaN, and malformed input silently yields a garbage clustering.
// `cluster()` validates first and returns Expected<Clustering, Error>
// (core/status.h), so application code gets a typed, diagnosable
// rejection instead. The validation pass is itself a deterministic
// parallel reduction, so it costs one O(n) sweep and never perturbs the
// clustering's bit-determinism.
#pragma once

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/auto_select.h"
#include "core/clustering.h"
#include "core/request.h"
#include "core/status.h"

namespace fdbscan {

namespace detail {

/// Index of the first point with a non-finite coordinate, or n if all
/// coordinates are finite. A deterministic min-reduction: the same index
/// is reported at any worker count.
template <int DIM>
[[nodiscard]] std::int64_t first_non_finite(
    const std::vector<Point<DIM>>& points) {
  const auto n = static_cast<std::int64_t>(points.size());
  return exec::parallel_reduce(
      "cluster/validate-points", n, n,
      [&](std::int64_t i) {
        const auto& p = points[static_cast<std::size_t>(i)];
        for (int d = 0; d < DIM; ++d) {
          if (!std::isfinite(p[d])) return i;
        }
        return n;
      },
      [](std::int64_t a, std::int64_t b) { return a < b ? a : b; });
}

}  // namespace detail

// validate_parameters() lives in core/request.h (the shared validation
// path of RequestSpec); this header re-exports it via the include above.

/// Validates (params, options) against a point set. Returns an engaged
/// optional on the *first* problem found, checking cheap scalar
/// parameters before the O(n) coordinate scan.
template <int DIM>
[[nodiscard]] std::optional<Error> validate_input(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const Options& options = {}) {
  if (auto error = validate_parameters(params, options)) return error;
  const std::int64_t bad = detail::first_non_finite(points);
  if (bad < static_cast<std::int64_t>(points.size())) {
    return Error{ErrorCode::kNonFinitePoint,
                 "point " + std::to_string(bad) +
                     " has a non-finite coordinate"};
  }
  return std::nullopt;
}

/// Checked clustering: validates, then dispatches per `method`. On
/// success the Clustering is exactly what the corresponding unchecked
/// call would have produced (same kernels, bit-identical labels).
template <int DIM>
[[nodiscard]] Expected<Clustering> cluster(
    const std::vector<Point<DIM>>& points, const Parameters& params,
    const Options& options = {}, Method method = Method::kAuto) {
  if (auto error = validate_input(points, params, options)) {
    return *std::move(error);
  }
  switch (method) {
    case Method::kFdbscan:
      return fdbscan(points, params, options);
    case Method::kDensebox:
      return fdbscan_densebox(points, params, options);
    case Method::kAuto:
      break;
  }
  return fdbscan_auto(points, params, options).clustering;
}

/// Checked clustering on an existing Engine (amortized index/workspace).
template <int DIM>
[[nodiscard]] Expected<Clustering> cluster(
    Engine<DIM>& engine, const Parameters& params, const Options& options = {},
    Method method = Method::kAuto) {
  if (auto error = validate_input(engine.points(), params, options)) {
    return *std::move(error);
  }
  switch (method) {
    case Method::kFdbscan:
      return engine.run(params, options);
    case Method::kDensebox:
      return engine.run_densebox(params, options);
    case Method::kAuto:
      break;
  }
  return fdbscan_auto(engine, params, options).clustering;
}

/// RequestSpec front door: the exact validation the service applies at
/// submit time (validate_spec), then the same dispatch as the positional
/// overloads. spec.deadline_ms / spec.token are service semantics and
/// ignored here; spec.shards must be 0 or 1 (sharded execution goes
/// through shard::cluster_sharded or the service).
template <int DIM>
[[nodiscard]] Expected<Clustering> cluster(
    const std::vector<Point<DIM>>& points, const RequestSpec& spec) {
  if (auto error = validate_spec(spec)) return *std::move(error);
  if (spec.shards > 1) {
    return Error{ErrorCode::kInvalidShards,
                 "direct cluster() is single-engine; use cluster_sharded or "
                 "the service for shards > 1"};
  }
  return cluster(points, spec.params, spec.options, spec.method);
}

/// Same, on an existing Engine (amortized index/workspace).
template <int DIM>
[[nodiscard]] Expected<Clustering> cluster(Engine<DIM>& engine,
                                           const RequestSpec& spec) {
  if (auto error = validate_spec(spec)) return *std::move(error);
  if (spec.shards > 1) {
    return Error{ErrorCode::kInvalidShards,
                 "direct cluster() is single-engine; use cluster_sharded or "
                 "the service for shards > 1"};
  }
  return cluster(engine, spec.params, spec.options, spec.method);
}

}  // namespace fdbscan
