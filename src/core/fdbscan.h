// FDBSCAN — "fused" DBSCAN (§4.1): batched BVH traversal fused with the
// synchronization-free union-find, within the two-phase GPU framework of
// §3.2.
//
//   Preprocessing: one thread per point runs an eps-range traversal that
//   terminates as soon as minpts neighbors (including the point itself)
//   are seen; survivors are core points. Skipped entirely for
//   minpts <= 2 (Alg. 3 line 2).
//
//   Main phase: one thread per *sorted leaf position* i runs a masked
//   traversal that hides every leaf with position < i+1, so each
//   neighboring pair is discovered exactly once; each discovery resolves
//   per Algorithm 3 (core-core UNION, core-border CAS claim).
//
//   Finalization: pointer-jumping flatten + dense relabeling.
//
// Memory is O(n): neighbors are processed on the fly and never stored.
#pragma once

#include <vector>

#include "bvh/bvh.h"
#include "core/clustering.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "geometry/point.h"

namespace fdbscan {

template <int DIM>
[[nodiscard]] Clustering fdbscan(const std::vector<Point<DIM>>& points,
                                 const Parameters& params,
                                 const Options& options = {}) {
  const auto n = static_cast<std::int64_t>(points.size());
  const float eps2 = params.eps * params.eps;
  Clustering empty;
  if (n == 0) return empty;

  exec::ScopedCharge charge(
      options.memory,
      points.size() * (sizeof(std::int32_t) + sizeof(std::uint8_t)));
  exec::PhaseProfiler timer;

  Bvh<DIM> bvh(points);
  exec::ScopedCharge bvh_charge(options.memory, bvh.bytes_used());
  PhaseTimings timings;
  timings.index_construction =
      timer.lap("fdbscan/index", &timings.index_construction_profile);

  // --- Preprocessing: determine core points -------------------------------
  // Work counters accumulate into striped per-thread slots: a shared
  // atomic here would serialize every traversal thread on one cache line.
  exec::PerThread<TraversalStats> work;
  std::vector<std::uint8_t> is_core(points.size(), 0);
  if (params.minpts <= 1) {
    // Degenerate density threshold: every point is core.
    exec::parallel_for("fdbscan/pre/all-core", n, [&](std::int64_t i) {
      is_core[static_cast<std::size_t>(i)] = 1;
    });
  } else if (params.minpts > 2) {
    exec::parallel_for("fdbscan/pre/core-count", n, [&](std::int64_t i) {
      const auto& x = points[static_cast<std::size_t>(i)];
      std::int32_t count = 0;  // the traversal finds x itself at distance 0
      TraversalStats stats;  // stack-local: increments stay in registers
      bvh.for_each_near(
          x, eps2, 0,
          [&](std::int32_t, std::int32_t) {
            ++count;
            return (options.early_exit && count >= params.minpts)
                       ? TraversalControl::kTerminate
                       : TraversalControl::kContinue;
          },
          &stats);
      if (count >= params.minpts) is_core[static_cast<std::size_t>(i)] = 1;
      work.local() += stats;
    });
  }
  timings.preprocessing =
      timer.lap("fdbscan/pre", &timings.preprocessing_profile);

  // --- Main phase: fused traversal + union-find ---------------------------
  std::vector<std::int32_t> labels(points.size());
  init_singletons(labels);
  UnionFindView uf(labels.data(), static_cast<std::int32_t>(n));
  const bool fof = params.minpts == 2;  // Friends-of-Friends fast path

  exec::parallel_for("fdbscan/main/traverse-union", n, [&](std::int64_t pos) {
    // Threads are assigned sorted leaf positions (not raw ids) so that
    // neighboring threads touch neighboring memory — the batched, low
    // data-divergence launch of §3.2.
    const std::int32_t x = bvh.primitive_at(static_cast<std::int32_t>(pos));
    const auto& px = points[static_cast<std::size_t>(x)];
    const std::int32_t mask =
        options.masked_traversal ? static_cast<std::int32_t>(pos) + 1 : 0;
    TraversalStats stats;
    bvh.for_each_near(
        px, eps2, mask,
        [&](std::int32_t, std::int32_t y) {
          if (y != x) {
            if (fof) {
              // Any eps-close pair consists of two core points (|N| >= 2).
              exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(x)],
                                         std::uint8_t{1});
              exec::atomic_store_relaxed(is_core[static_cast<std::size_t>(y)],
                                         std::uint8_t{1});
              uf.merge(x, y);
            } else {
              detail::resolve_pair(uf, is_core, x, y, options.variant);
            }
          }
          return TraversalControl::kContinue;
        },
        &stats);
    work.local() += stats;
  });
  timings.main = timer.lap("fdbscan/main", &timings.main_profile);

  // --- Finalization --------------------------------------------------------
  flatten(labels);
  Clustering result =
      detail::finalize_labels(std::move(labels), std::move(is_core));
  timings.finalization =
      timer.lap("fdbscan/finalize", &timings.finalization_profile);
  result.timings = timings;
  const TraversalStats total_work = work.combine();
  result.distance_computations = total_work.leaves_tested;
  result.index_nodes_visited = total_work.nodes_visited;
  if (options.memory) result.peak_memory_bytes = options.memory->peak();
  return result;
}

}  // namespace fdbscan
