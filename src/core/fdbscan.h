// FDBSCAN — "fused" DBSCAN (§4.1): batched BVH traversal fused with the
// synchronization-free union-find, within the two-phase GPU framework of
// §3.2.
//
//   Preprocessing: one thread per point runs an eps-range traversal that
//   terminates as soon as minpts neighbors (including the point itself)
//   are seen; survivors are core points. Skipped entirely for
//   minpts <= 2 (Alg. 3 line 2).
//
//   Main phase: one thread per *sorted leaf position* i runs a masked
//   traversal that hides every leaf with position < i+1, so each
//   neighboring pair is discovered exactly once; each discovery resolves
//   per Algorithm 3 (core-core UNION, core-border CAS claim).
//
//   Finalization: pointer-jumping flatten + dense relabeling.
//
// Memory is O(n): neighbors are processed on the fly and never stored.
//
// The kernels live in Engine::run() (core/engine.h); this free function
// is the one-shot convenience wrapper — it builds a throwaway engine, so
// every call pays the index build. Callers clustering the same points
// repeatedly (parameter sweeps, serving) should hold an Engine instead.
#pragma once

#include <vector>

#include "core/engine.h"

namespace fdbscan {

template <int DIM>
[[nodiscard]] Clustering fdbscan(const std::vector<Point<DIM>>& points,
                                 const Parameters& params,
                                 const Options& options = {}) {
  // The engine charges the BVH and workspace to its own tracker; routing
  // options.memory there keeps the one-shot accounting equivalent to the
  // historical ScopedCharge scheme (charged for the call, released after).
  Engine<DIM> engine(points, EngineConfig{.memory = options.memory});
  return engine.run(params, options);
}

}  // namespace fdbscan
