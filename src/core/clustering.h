// Public result types and shared kernels of the DBSCAN framework (§3).
#pragma once

#include <cstdint>
#include <vector>

#include "exec/atomic.h"
#include "exec/memory_tracker.h"
#include "exec/parallel.h"
#include "exec/profile.h"
#include "unionfind/union_find.h"

namespace fdbscan {

/// Label assigned to noise points in a finalized clustering.
inline constexpr std::int32_t kNoise = -1;

/// DBSCAN parameters. `eps` is the neighborhood radius; `minpts` is the
/// density threshold (|N_eps(x)| >= minpts, N including x itself, makes x
/// a core point). minpts == 2 triggers the Friends-of-Friends fast path
/// that skips the preprocessing phase (Alg. 3 line 2).
struct Parameters {
  float eps = 0.0f;
  std::int32_t minpts = 2;
};

/// Which clustering semantics to compute.
enum class Variant : std::uint8_t {
  kDbscan,      ///< classic DBSCAN: border points join one adjacent cluster
  kDbscanStar,  ///< DBSCAN* (Campello et al.): border points become noise
};

/// Tuning/ablation switches for the tree-based algorithms.
struct Options {
  Variant variant = Variant::kDbscan;
  /// §4.1 masked ("half") traversal in the main phase. Disable only for
  /// the ablation bench; results are identical either way.
  bool masked_traversal = true;
  /// Early exit from the preprocessing traversal once minpts neighbors
  /// are seen. Disable only for the ablation bench.
  bool early_exit = true;
  /// FDBSCAN-DenseBox only: scales the grid cell width relative to the
  /// paper's eps/sqrt(d). Must be in (0, 1]: larger would break the
  /// cell-diameter <= eps invariant. Values < 1 trade fewer points per
  /// dense cell for tighter boxes (design-choice ablation, DESIGN.md §4).
  float densebox_cell_width_factor = 1.0f;
  /// Optional device-memory accounting / OOM simulation.
  exec::MemoryTracker* memory = nullptr;
};

/// Phase timing breakdown (seconds) reported by every algorithm, plus
/// the kernel profile of each phase (launches, chunks, per-worker busy
/// time) from which the benches derive load imbalance (DESIGN.md §7).
struct PhaseTimings {
  double index_construction = 0.0;  ///< grid and/or tree build
  double preprocessing = 0.0;       ///< core-point determination
  double main = 0.0;                ///< neighbor traversal + union-find
  double finalization = 0.0;        ///< flatten + label assignment

  exec::KernelPhaseProfile index_construction_profile;
  exec::KernelPhaseProfile preprocessing_profile;
  exec::KernelPhaseProfile main_profile;
  exec::KernelPhaseProfile finalization_profile;

  /// Amortization counters of the run (core/engine.h, DESIGN.md §9).
  /// A one-shot free-function call reports one index build plus the
  /// warmup workspace growths; a warmed Engine run reports zero of both
  /// — the property the bench telemetry gates.
  bool engine_run = false;          ///< run went through an Engine
  std::int32_t index_rebuilds = 0;  ///< BVH constructions in this run
  std::int32_t grid_cache_hits = 0;     ///< DenseGrid cache hits
  std::int32_t workspace_reallocs = 0;  ///< workspace arena growths

  [[nodiscard]] double total() const noexcept {
    return index_construction + preprocessing + main + finalization;
  }
};

/// A finalized clustering.
struct Clustering {
  /// Per-point label: kNoise, or the cluster id in [0, num_clusters).
  std::vector<std::int32_t> labels;
  /// Per-point core flag (1 = core). Border points are clustered but not
  /// core; with Variant::kDbscanStar border points are noise.
  std::vector<std::uint8_t> is_core;
  std::int32_t num_clusters = 0;
  PhaseTimings timings;
  /// Peak auxiliary bytes if a MemoryTracker was supplied, else 0.
  std::size_t peak_memory_bytes = 0;
  /// Dense-grid statistics (FDBSCAN-DenseBox only; zero otherwise).
  std::int32_t num_dense_cells = 0;
  std::int32_t points_in_dense_cells = 0;
  /// Architecture-neutral work counters (see bvh::TraversalStats): the
  /// number of point-point distance evaluations across all phases, and
  /// the number of index nodes whose bounds were tested. These reproduce
  /// the paper's efficiency arguments independently of the execution
  /// substrate (DESIGN.md §6).
  std::int64_t distance_computations = 0;
  std::int64_t index_nodes_visited = 0;
  /// Sharded-execution totals (shard/sharded_engine.h; zero for
  /// single-engine runs). `shard_halo_bytes` is the communication volume
  /// a real exchange would ship for the run's eps: per ghost, the
  /// coordinates plus the global id on the way in and the owner's core
  /// flag on the way back.
  std::int32_t num_shards = 0;
  std::int64_t shard_ghosts = 0;       ///< ghost copies across all shards
  std::int64_t shard_cross_edges = 0;  ///< pair-once edges with a ghost endpoint
  std::int64_t shard_halo_bytes = 0;

  [[nodiscard]] std::int64_t num_noise() const noexcept {
    std::int64_t k = 0;
    for (auto l : labels) k += (l == kNoise);
    return k;
  }
};

namespace detail {

/// Edge resolution of Algorithm 3 (lines 6-12), shared by FDBSCAN,
/// FDBSCAN-DenseBox and the DSDBSCAN baseline. Core status of both
/// endpoints must already be known. Safe to call concurrently; border
/// claims go through a single CAS (no critical section).
inline void resolve_pair(const UnionFindView& uf,
                         const std::vector<std::uint8_t>& is_core,
                         std::int32_t x, std::int32_t y,
                         Variant variant) noexcept {
  const bool xc = is_core[static_cast<std::size_t>(x)] != 0;
  const bool yc = is_core[static_cast<std::size_t>(y)] != 0;
  if (xc && yc) {
    uf.merge(x, y);
  } else if (variant == Variant::kDbscan) {
    if (xc) {
      uf.claim(y, x);  // y is a border point of x's cluster
    } else if (yc) {
      uf.claim(x, y);
    }
  }
  // DBSCAN*: border points are left unassigned (they become noise).
}

/// Turns a *flattened* union-find labels array + core flags into a
/// finalized Clustering: noise points get kNoise and clusters are
/// renumbered densely to [0, num_clusters). A point is noise iff it is
/// not core and was never claimed (labels[i] == i); every cluster root is
/// a core point with labels[root] == root. `compact` is caller-provided
/// scratch of n int32 (the Engine hands in a reused workspace slot so a
/// warmed run allocates only the result vector); its contents on return
/// are unspecified.
inline Clustering finalize_labels_with_scratch(
    const std::int32_t* labels, std::int64_t n,
    std::vector<std::uint8_t>&& is_core, std::int32_t* compact) {
  // Rank the roots with an exclusive scan to obtain dense cluster ids.
  exec::parallel_for("finalize/core-roots", n, [&](std::int64_t i) {
    const auto ui = static_cast<std::size_t>(i);
    compact[ui] = (labels[ui] == static_cast<std::int32_t>(i) &&
                   is_core[ui] != 0)
                      ? 1
                      : 0;
  });
  const std::int32_t num_clusters =
      exec::exclusive_scan("finalize/cluster-rank", compact, n);
  std::vector<std::int32_t> out(static_cast<std::size_t>(n));
  exec::parallel_for("finalize/relabel", n, [&](std::int64_t i) {
    const auto ui = static_cast<std::size_t>(i);
    if (is_core[ui] == 0 && labels[ui] == static_cast<std::int32_t>(i)) {
      out[ui] = kNoise;
    } else {
      out[ui] = compact[static_cast<std::size_t>(labels[ui])];
    }
  });
  Clustering result;
  result.labels = std::move(out);
  result.is_core = std::move(is_core);
  result.num_clusters = num_clusters;
  return result;
}

/// Convenience overload owning its scratch — the baselines' path.
inline Clustering finalize_labels(std::vector<std::int32_t>&& labels,
                                  std::vector<std::uint8_t>&& is_core) {
  const auto n = static_cast<std::int64_t>(labels.size());
  std::vector<std::int32_t> compact(labels.size());
  return finalize_labels_with_scratch(labels.data(), n, std::move(is_core),
                                      compact.data());
}

}  // namespace detail
}  // namespace fdbscan
