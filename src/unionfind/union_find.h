// Synchronization-free union-find after Jaiganesh & Burtscher, "A
// High-Performance Connected Components Implementation for GPUs" (HPDC'18)
// — the algorithm the paper selects for its UNION-FIND kernels (§4).
//
// The disjoint-set forest lives in a flat `labels` array: labels[v] is the
// parent of v, and roots satisfy labels[root] == root. Three properties
// make it safe without locks:
//   * hooking always attaches the *larger* root under the smaller one, so
//     parent chains are strictly decreasing and cycles are impossible;
//   * hooking is a single CAS on a root's own slot, retried on conflict;
//   * FIND uses "intermediate pointer jumping": every node on the walk is
//     re-pointed to its grandparent (halving path length), which is a
//     benign data race (all writes move labels closer to the root).
//
// A separate flatten() finalization kernel makes every label point
// directly to its representative — the paper's extra finalization phase.
//
// DBSCAN-specific use: a *border* point y is claimed by a cluster via a
// single CAS labels[y]: y -> representative. That replaces the critical
// section of Algorithm 3 (lines 10-12) and prevents the "bridging" effect:
// only one cluster can win the CAS, and border points are never used as
// hooking endpoints afterwards.
#pragma once

#include <cstdint>
#include <vector>

#include "exec/atomic.h"
#include "exec/parallel.h"

namespace fdbscan {

/// View over a labels array providing the concurrent UNION/FIND kernels.
/// The view does not own the storage; it is trivially copyable so kernels
/// can capture it by value, as a GPU kernel would.
class UnionFindView {
 public:
  UnionFindView(std::int32_t* labels, std::int32_t n) noexcept
      : labels_(labels), n_(n) {}

  std::int32_t size() const noexcept { return n_; }
  std::int32_t* labels() noexcept { return labels_; }

  /// FIND with intermediate pointer jumping. Safe to call concurrently
  /// with other find/merge operations.
  std::int32_t representative(std::int32_t v) const noexcept {
    std::int32_t curr = exec::atomic_load_relaxed(labels_[v]);
    if (curr != v) {
      std::int32_t prev = v;
      std::int32_t next;
      while (curr > (next = exec::atomic_load_relaxed(labels_[curr]))) {
        // Point prev at its grandparent; a stale write only lengthens a
        // path that another thread will re-shorten.
        exec::atomic_store_relaxed(labels_[prev], next);
        prev = curr;
        curr = next;
      }
    }
    return curr;
  }

  /// UNION of the sets containing u and v (both must currently be valid
  /// set members, i.e. reachable chains — core points in DBSCAN terms).
  void merge(std::int32_t u, std::int32_t v) const noexcept {
    std::int32_t u_rep = representative(u);
    std::int32_t v_rep = representative(v);
    while (u_rep != v_rep) {
      // Hook the larger root under the smaller to keep chains decreasing.
      if (u_rep > v_rep) {
        std::int32_t expected = u_rep;
        if (exec::atomic_cas(labels_[u_rep], expected, v_rep)) return;
        u_rep = representative(expected);
      } else {
        std::int32_t expected = v_rep;
        if (exec::atomic_cas(labels_[v_rep], expected, u_rep)) return;
        v_rep = representative(expected);
      }
    }
  }

  /// Attempt to claim an unassigned point y for the cluster represented
  /// by (a chain leading to) `into`. Returns true if this call won the
  /// claim; false if y already belongs to some cluster (possibly this
  /// one). This is Algorithm 3's critical section as a single CAS.
  bool claim(std::int32_t y, std::int32_t into) const noexcept {
    std::int32_t expected = y;
    return exec::atomic_cas(labels_[y], expected, representative(into));
  }

  /// True iff y has not been claimed by / merged into any set.
  bool unassigned(std::int32_t y) const noexcept {
    return exec::atomic_load(labels_[y]) == y;
  }

 private:
  std::int32_t* labels_;
  std::int32_t n_;
};

/// Initialize labels to the singleton forest {0}, {1}, ..., {n-1}.
inline void init_singletons(std::int32_t* labels, std::int32_t n) {
  exec::parallel_for("union-find/init-singletons", n, [labels](std::int64_t i) {
    labels[i] = static_cast<std::int32_t>(i);
  });
}

inline void init_singletons(std::vector<std::int32_t>& labels) {
  init_singletons(labels.data(), static_cast<std::int32_t>(labels.size()));
}

/// Finalization kernel: after this, labels[v] is the root of v's set for
/// every v (the paper's extra phase ensuring all paths are compressed).
inline void flatten(std::int32_t* labels, std::int32_t n) {
  exec::parallel_for("union-find/flatten", n, [labels](std::int64_t v) {
    std::int32_t curr = exec::atomic_load_relaxed(labels[v]);
    std::int32_t next;
    while (curr != (next = exec::atomic_load_relaxed(labels[curr]))) {
      curr = next;
    }
    exec::atomic_store_relaxed(labels[v], curr);
  });
}

inline void flatten(std::vector<std::int32_t>& labels) {
  flatten(labels.data(), static_cast<std::int32_t>(labels.size()));
}

/// Sequential disjoint-set (rank + full path compression): the reference
/// implementation used by tests and the serial baselines.
class SequentialDSU {
 public:
  explicit SequentialDSU(std::int32_t n)
      : parent_(static_cast<std::size_t>(n)), rank_(static_cast<std::size_t>(n), 0) {
    for (std::int32_t i = 0; i < n; ++i) parent_[static_cast<std::size_t>(i)] = i;
  }

  std::int32_t find(std::int32_t v) {
    std::int32_t root = v;
    while (parent_[static_cast<std::size_t>(root)] != root)
      root = parent_[static_cast<std::size_t>(root)];
    while (parent_[static_cast<std::size_t>(v)] != root) {
      std::int32_t next = parent_[static_cast<std::size_t>(v)];
      parent_[static_cast<std::size_t>(v)] = root;
      v = next;
    }
    return root;
  }

  /// Returns true if u and v were in different sets.
  bool unite(std::int32_t u, std::int32_t v) {
    u = find(u);
    v = find(v);
    if (u == v) return false;
    auto& ru = rank_[static_cast<std::size_t>(u)];
    auto& rv = rank_[static_cast<std::size_t>(v)];
    if (ru < rv) std::swap(u, v);
    parent_[static_cast<std::size_t>(v)] = u;
    if (ru == rv) ++rank_[static_cast<std::size_t>(u)];
    return true;
  }

  std::int32_t size() const noexcept {
    return static_cast<std::int32_t>(parent_.size());
  }

 private:
  std::vector<std::int32_t> parent_;
  std::vector<std::int8_t> rank_;
};

}  // namespace fdbscan
