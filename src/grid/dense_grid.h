// Cartesian grid with cell length eps/sqrt(d) superimposed over the data
// domain (FDBSCAN-DenseBox, §4.2). The cell length guarantees a cell
// diameter <= eps, so any cell holding >= minpts points ("dense cell")
// consists solely of core points belonging to one cluster.
//
// The grid is only materialized sparsely: the total cell count can be in
// the billions (§5.2 reports 3.5e9 cells with 28e6 non-empty), so points
// are keyed by a 64-bit linear cell index and grouped by sorting, never by
// allocating per-cell storage.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/parallel.h"
#include "exec/radix_sort.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "geometry/points_view.h"

namespace fdbscan {

/// Geometry of the superimposed grid.
template <int DIM>
struct GridSpec {
  Box<DIM> domain;
  float cell_width = 0.0f;
  std::int64_t dims[DIM] = {};  // cells per dimension
  std::uint64_t total_cells = 0;

  /// Builds the spec for the given domain and eps. The cell width is
  /// eps/sqrt(d) (times an optional factor in (0, 1], preserving the
  /// diameter-below-eps invariant). Throws if the linear cell index would
  /// overflow 64 bits (absurdly small eps).
  static GridSpec create(const Box<DIM>& domain, float eps,
                         float width_factor = 1.0f) {
    GridSpec spec;
    spec.domain = domain;
    if (!(width_factor > 0.0f) || width_factor > 1.0f) {
      throw std::invalid_argument(
          "GridSpec: width_factor must be in (0, 1]");
    }
    spec.cell_width =
        eps / std::sqrt(static_cast<float>(DIM)) * width_factor;
    if (!(spec.cell_width > 0.0f)) {
      throw std::invalid_argument("GridSpec: eps must be positive");
    }
    unsigned __int128 total = 1;
    for (int d = 0; d < DIM; ++d) {
      const float extent = domain.max[d] - domain.min[d];
      // Compute in double first: the count must be range-checked before
      // the integer cast (casting an over-range float is undefined).
      const double count =
          std::ceil(static_cast<double>(extent) /
                    static_cast<double>(spec.cell_width)) +
          1.0;  // +1 guards points landing exactly on the max face
      if (count >= 9.0e18) {
        throw std::overflow_error("GridSpec: cell count exceeds 64 bits");
      }
      spec.dims[d] = std::max<std::int64_t>(1, static_cast<std::int64_t>(count));
      total *= static_cast<unsigned __int128>(spec.dims[d]);
      if (total > static_cast<unsigned __int128>(UINT64_MAX)) {
        throw std::overflow_error("GridSpec: cell index exceeds 64 bits");
      }
    }
    spec.total_cells = static_cast<std::uint64_t>(total);
    return spec;
  }

  /// Integer cell coordinates of a point (clamped to the grid).
  void cell_coords(const Point<DIM>& p, std::int64_t out[DIM]) const noexcept {
    for (int d = 0; d < DIM; ++d) {
      auto c = static_cast<std::int64_t>(
          std::floor((p[d] - domain.min[d]) / cell_width));
      out[d] = std::clamp<std::int64_t>(c, 0, dims[d] - 1);
    }
  }

  /// Row-major linearization of cell coordinates.
  [[nodiscard]] std::uint64_t linearize(const std::int64_t c[DIM]) const noexcept {
    std::uint64_t key = 0;
    for (int d = 0; d < DIM; ++d) {
      key = key * static_cast<std::uint64_t>(dims[d]) +
            static_cast<std::uint64_t>(c[d]);
    }
    return key;
  }

  [[nodiscard]] std::uint64_t cell_key(const Point<DIM>& p) const noexcept {
    std::int64_t c[DIM];
    cell_coords(p, c);
    return linearize(c);
  }

  /// Inverse of linearize: the axis-aligned box of a cell.
  [[nodiscard]] Box<DIM> cell_box(std::uint64_t key) const noexcept {
    std::int64_t c[DIM];
    for (int d = DIM - 1; d >= 0; --d) {
      c[d] = static_cast<std::int64_t>(key % static_cast<std::uint64_t>(dims[d]));
      key /= static_cast<std::uint64_t>(dims[d]);
    }
    Box<DIM> b;
    for (int d = 0; d < DIM; ++d) {
      b.min[d] = domain.min[d] + static_cast<float>(c[d]) * cell_width;
      b.max[d] = b.min[d] + cell_width;
    }
    return b;
  }
};

/// A contiguous run of points (in the grid's permutation) sharing a cell.
struct CellRange {
  std::uint64_t key;
  std::int32_t begin;
  std::int32_t end;

  [[nodiscard]] std::int32_t count() const noexcept { return end - begin; }
};

/// Sparse occupancy structure: points grouped by cell, dense cells
/// identified. `permutation()[k]` is the original index of the k-th point
/// in cell-grouped order; dense cells come first in `cells()`.
template <int DIM>
class DenseGrid {
 public:
  DenseGrid(const std::vector<Point<DIM>>& points, float eps,
            std::int32_t minpts)
      : spec_(GridSpec<DIM>::create(bounds_of(points.data(), points.size()),
                                    eps)) {
    build(points, minpts);
  }

  DenseGrid(const std::vector<Point<DIM>>& points, const GridSpec<DIM>& spec,
            std::int32_t minpts)
      : spec_(spec) {
    build(points, minpts);
  }

  const GridSpec<DIM>& spec() const noexcept { return spec_; }

  /// All occupied cells, dense cells first (indices [0, num_dense_cells)).
  const std::vector<CellRange>& cells() const noexcept { return cells_; }
  std::int32_t num_dense_cells() const noexcept { return num_dense_; }

  /// Point indices grouped by cell (dense cells first).
  const std::vector<std::int32_t>& permutation() const noexcept { return perm_; }

  /// Number of points living in dense cells (they are a prefix of the
  /// permutation).
  std::int32_t points_in_dense_cells() const noexcept { return dense_points_; }

  /// For each original point: index into cells() of its dense cell, or -1
  /// if the point is not in a dense cell.
  const std::vector<std::int32_t>& dense_cell_of() const noexcept {
    return dense_cell_of_;
  }

  [[nodiscard]] bool in_dense_cell(std::int32_t point) const noexcept {
    return dense_cell_of_[static_cast<std::size_t>(point)] >= 0;
  }

  /// SoA mirror of the permuted points: `member_axes()[d][k]` is
  /// coordinate d of permutation()[k]. Cell ranges index straight into
  /// these spans, so membership scans (exec/simd.h count_within /
  /// first_within) load whole lane groups of one cell contiguously.
  /// Padded per the kSoaPadding contract of geometry/points_view.h.
  [[nodiscard]] std::array<const float*, DIM> member_axes() const noexcept {
    std::array<const float*, DIM> axes{};
    for (int d = 0; d < DIM; ++d) {
      axes[static_cast<std::size_t>(d)] =
          member_coords_[static_cast<std::size_t>(d)].data();
    }
    return axes;
  }

  /// Heap bytes of the SoA member mirror (for memory accounting).
  [[nodiscard]] std::size_t soa_bytes() const noexcept {
    std::size_t total = 0;
    for (int d = 0; d < DIM; ++d) {
      total +=
          member_coords_[static_cast<std::size_t>(d)].capacity() * sizeof(float);
    }
    return total;
  }

 private:
  void build(const std::vector<Point<DIM>>& points, std::int32_t minpts) {
    const auto n = static_cast<std::int64_t>(points.size());
    std::vector<std::uint64_t> keys(points.size());
    exec::parallel_for("dense-grid/cell-keys", n, [&](std::int64_t i) {
      keys[static_cast<std::size_t>(i)] =
          spec_.cell_key(points[static_cast<std::size_t>(i)]);
    });

    perm_.resize(points.size());
    std::iota(perm_.begin(), perm_.end(), 0);
    exec::radix_sort_pairs(keys, perm_);

    // Group equal keys into cells, splitting dense from sparse. After
    // the tandem sort, keys[k] is the cell key at sorted position k.
    std::vector<CellRange> dense, sparse;
    std::int64_t run_begin = 0;
    for (std::int64_t i = 1; i <= n; ++i) {
      if (i == n || keys[static_cast<std::size_t>(i)] !=
                        keys[static_cast<std::size_t>(run_begin)]) {
        CellRange cell{keys[static_cast<std::size_t>(run_begin)],
                       static_cast<std::int32_t>(run_begin),
                       static_cast<std::int32_t>(i)};
        (cell.count() >= minpts ? dense : sparse).push_back(cell);
        run_begin = i;
      }
    }
    num_dense_ = static_cast<std::int32_t>(dense.size());

    // Re-permute so dense-cell points form a prefix, preserving grouping.
    std::vector<std::int32_t> reordered;
    reordered.reserve(perm_.size());
    for (const auto& cell : dense)
      for (std::int32_t k = cell.begin; k < cell.end; ++k)
        reordered.push_back(perm_[static_cast<std::size_t>(k)]);
    dense_points_ = static_cast<std::int32_t>(reordered.size());
    for (const auto& cell : sparse)
      for (std::int32_t k = cell.begin; k < cell.end; ++k)
        reordered.push_back(perm_[static_cast<std::size_t>(k)]);
    perm_ = std::move(reordered);

    cells_.clear();
    cells_.reserve(dense.size() + sparse.size());
    std::int32_t offset = 0;
    for (auto& cell : dense) {
      const std::int32_t c = cell.count();
      cells_.push_back({cell.key, offset, offset + c});
      offset += c;
    }
    for (auto& cell : sparse) {
      const std::int32_t c = cell.count();
      cells_.push_back({cell.key, offset, offset + c});
      offset += c;
    }

    dense_cell_of_.assign(points.size(), -1);
    for (std::int32_t ci = 0; ci < num_dense_; ++ci) {
      const auto& cell = cells_[static_cast<std::size_t>(ci)];
      for (std::int32_t k = cell.begin; k < cell.end; ++k)
        dense_cell_of_[static_cast<std::size_t>(
            perm_[static_cast<std::size_t>(k)])] = ci;
    }

    // SoA mirror in final permuted order (member_axes() contract above).
    for (int d = 0; d < DIM; ++d) {
      member_coords_[static_cast<std::size_t>(d)].assign(
          static_cast<std::size_t>(n + kSoaPadding),
          std::numeric_limits<float>::infinity());
    }
    exec::parallel_for("dense-grid/member-soa", n, [&](std::int64_t k) {
      const auto& p =
          points[static_cast<std::size_t>(perm_[static_cast<std::size_t>(k)])];
      for (int d = 0; d < DIM; ++d) {
        member_coords_[static_cast<std::size_t>(d)][static_cast<std::size_t>(
            k)] = p[d];
      }
    });
  }

  GridSpec<DIM> spec_;
  std::vector<std::int32_t> perm_;
  std::vector<CellRange> cells_;
  std::vector<std::int32_t> dense_cell_of_;
  std::array<std::vector<float>, DIM> member_coords_;
  std::int32_t num_dense_ = 0;
  std::int32_t dense_points_ = 0;
};

}  // namespace fdbscan
