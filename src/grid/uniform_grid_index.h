// Uniform-grid neighbor index with cell width eps: a range query visits
// the 3^d adjacent cells of the query point's cell. This is the classic
// cell-directory indexing used by CUDA-DClust* and by Sewell et al. [36],
// implemented sparsely (sorted cell keys + binary search) so empty cells
// cost nothing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "exec/radix_sort.h"
#include "geometry/point.h"
#include "grid/dense_grid.h"

namespace fdbscan {

template <int DIM>
class UniformGridIndex {
 public:
  UniformGridIndex(const std::vector<Point<DIM>>& points, float eps)
      : points_(points), eps2_(eps * eps) {
    Box<DIM> domain = bounds_of(points.data(), points.size());
    // Reuse GridSpec but with cell width == eps (not eps/sqrt(d)): a
    // query sphere then overlaps at most the 3^d surrounding cells.
    spec_.domain = domain;
    spec_.cell_width = eps;
    unsigned __int128 total = 1;
    for (int d = 0; d < DIM; ++d) {
      const float extent = domain.max[d] - domain.min[d];
      const double count = std::ceil(static_cast<double>(extent) /
                                     static_cast<double>(eps)) +
                           1.0;
      if (count >= 9.0e18) {
        throw std::overflow_error("UniformGridIndex: cell count overflow");
      }
      spec_.dims[d] = std::max<std::int64_t>(1, static_cast<std::int64_t>(count));
      total *= static_cast<unsigned __int128>(spec_.dims[d]);
      if (total > static_cast<unsigned __int128>(UINT64_MAX)) {
        throw std::overflow_error("UniformGridIndex: cell index overflow");
      }
    }
    spec_.total_cells = static_cast<std::uint64_t>(total);

    const auto n = points.size();
    std::vector<std::uint64_t> key_of(n);
    for (std::size_t i = 0; i < n; ++i) key_of[i] = spec_.cell_key(points[i]);
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    exec::radix_sort_pairs(key_of, order_);  // key_of is now by position
    std::size_t run = 0;
    for (std::size_t i = 1; i <= n; ++i) {
      if (i == n || key_of[i] != key_of[run]) {
        cell_keys_.push_back(key_of[run]);
        cell_begin_.push_back(static_cast<std::int32_t>(run));
        run = i;
      }
    }
    cell_begin_.push_back(static_cast<std::int32_t>(n));
  }

  [[nodiscard]] std::size_t bytes_used() const noexcept {
    return order_.size() * sizeof(std::int32_t) +
           cell_keys_.size() * sizeof(std::uint64_t) +
           cell_begin_.size() * sizeof(std::int32_t);
  }

  /// Collects the ids of all points within eps of p (including p itself
  /// if it is a member of the indexed set) into `out`. Returns the number
  /// of candidate points whose distance was evaluated.
  std::int64_t neighbors(const Point<DIM>& p,
                         std::vector<std::int32_t>& out) const {
    out.clear();
    std::int64_t base[DIM];
    spec_.cell_coords(p, base);
    std::int64_t nb[DIM];
    return visit_cells(p, base, nb, 0, out);
  }

 private:
  std::int64_t visit_cells(const Point<DIM>& p, const std::int64_t base[DIM],
                           std::int64_t nb[DIM], int dim,
                           std::vector<std::int32_t>& out) const {
    if (dim == DIM) return scan_cell(p, spec_.linearize(nb), out);
    std::int64_t tested = 0;
    for (std::int64_t dd = -1; dd <= 1; ++dd) {
      const std::int64_t c = base[dim] + dd;
      if (c < 0 || c >= spec_.dims[dim]) continue;
      nb[dim] = c;
      tested += visit_cells(p, base, nb, dim + 1, out);
    }
    return tested;
  }

  std::int64_t scan_cell(const Point<DIM>& p, std::uint64_t key,
                         std::vector<std::int32_t>& out) const {
    const auto it = std::lower_bound(cell_keys_.begin(), cell_keys_.end(), key);
    if (it == cell_keys_.end() || *it != key) return 0;
    const auto c = static_cast<std::size_t>(it - cell_keys_.begin());
    for (std::int32_t k = cell_begin_[c]; k < cell_begin_[c + 1]; ++k) {
      const std::int32_t id = order_[static_cast<std::size_t>(k)];
      if (within(p, points_[static_cast<std::size_t>(id)], eps2_)) {
        out.push_back(id);
      }
    }
    return cell_begin_[c + 1] - cell_begin_[c];
  }

  const std::vector<Point<DIM>>& points_;
  float eps2_;
  GridSpec<DIM> spec_;
  std::vector<std::int32_t> order_;        // point ids grouped by cell
  std::vector<std::uint64_t> cell_keys_;   // sorted occupied cell keys
  std::vector<std::int32_t> cell_begin_;   // size cells+1, ranges in order_
};

}  // namespace fdbscan
