#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace fdbscan::obs {

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

// One registry for the process. Metrics live in deques so references
// handed out by counter()/gauge()/histogram() stay stable forever; the
// index maps a name to its kind + deque position. Only registration and
// snapshotting take the mutex — updates go straight to the atomics.
struct Registry {
  std::mutex mutex;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, std::pair<Kind, std::size_t>> index;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static dtors
  return *r;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

std::size_t lookup(const std::string& name, Kind kind) {
  if (!valid_metric_name(name)) {
    throw std::logic_error("obs: metric name '" + name +
                           "' is not Prometheus-safe "
                           "([a-zA-Z_][a-zA-Z0-9_]*)");
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  auto it = r.index.find(name);
  if (it != r.index.end()) {
    if (it->second.first != kind) {
      throw std::logic_error("obs: metric '" + name +
                             "' registered with a different kind");
    }
    return it->second.second;
  }
  std::size_t pos = 0;
  switch (kind) {
    case Kind::kCounter:
      pos = r.counters.size();
      r.counters.emplace_back();
      break;
    case Kind::kGauge:
      pos = r.gauges.size();
      r.gauges.emplace_back();
      break;
    case Kind::kHistogram:
      pos = r.histograms.size();
      r.histograms.emplace_back();
      break;
  }
  r.index.emplace(name, std::make_pair(kind, pos));
  return pos;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

Counter& counter(const std::string& name) {
  const std::size_t pos = lookup(name, Kind::kCounter);
  return registry().counters[pos];
}

Gauge& gauge(const std::string& name) {
  const std::size_t pos = lookup(name, Kind::kGauge);
  return registry().gauges[pos];
}

Histogram& histogram(const std::string& name) {
  const std::size_t pos = lookup(name, Kind::kHistogram);
  return registry().histograms[pos];
}

MetricsSnapshot snapshot_metrics() {
  Registry& r = registry();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(r.mutex);
  for (const auto& [name, entry] : r.index) {  // map: already name-sorted
    switch (entry.first) {
      case Kind::kCounter:
        snap.counters.push_back({name, r.counters[entry.second].value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({name, r.gauges[entry.second].value()});
        break;
      case Kind::kHistogram:
        snap.histograms.push_back(
            {name, r.histograms[entry.second].snapshot()});
        break;
    }
  }
  return snap;
}

MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                              const MetricsSnapshot& after) {
  MetricsSnapshot d;
  std::map<std::string, std::int64_t> prior_counters;
  for (const auto& c : before.counters) prior_counters[c.name] = c.value;
  for (const auto& c : after.counters) {
    auto it = prior_counters.find(c.name);
    const std::int64_t base = it != prior_counters.end() ? it->second : 0;
    d.counters.push_back({c.name, c.value - base});
  }
  d.gauges = after.gauges;
  std::map<std::string, const HistogramSnapshot*> prior_hists;
  for (const auto& h : before.histograms) prior_hists[h.name] = &h.data;
  for (const auto& h : after.histograms) {
    HistogramSnapshot delta = h.data;
    auto it = prior_hists.find(h.name);
    if (it != prior_hists.end()) {
      const HistogramSnapshot& base = *it->second;
      delta.count -= base.count;
      delta.total_ns -= base.total_ns;
      for (int i = 0; i < kHistogramBuckets; ++i) {
        delta.buckets[static_cast<std::size_t>(i)] -=
            base.buckets[static_cast<std::size_t>(i)];
      }
      // max is not subtractable over a window; only meaningful when the
      // window saw samples at all.
      if (delta.count == 0) delta.max_ns = 0;
    }
    d.histograms.push_back({h.name, delta});
  }
  return d;
}

std::string to_prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snap.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    std::int64_t cumulative = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      cumulative += h.data.buckets[static_cast<std::size_t>(i)];
      if (i == kHistogramBuckets - 1) break;  // last bucket == +Inf below
      // Bucket i holds samples < 2^i microseconds; upper bound in
      // seconds, as Prometheus histograms are seconds-valued.
      const double le =
          static_cast<double>(std::uint64_t{1} << i) * 1e-6;
      out += h.name + "_bucket{le=\"";
      append_double(out, le);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           "\n";
    out += h.name + "_sum ";
    append_double(out, static_cast<double>(h.data.total_ns) * 1e-9);
    out += "\n";
    out += h.name + "_count " + std::to_string(h.data.count) + "\n";
  }
  return out;
}

std::string to_json(const MetricsSnapshot& snap) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i) out += ',';
    out += "\"" + snap.counters[i].name +
           "\":" + std::to_string(snap.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i) out += ',';
    out += "\"" + snap.gauges[i].name +
           "\":" + std::to_string(snap.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    if (i) out += ',';
    const auto& h = snap.histograms[i];
    out += "\"" + h.name + "\":{\"count\":" + std::to_string(h.data.count) +
           ",\"total_ns\":" + std::to_string(h.data.total_ns) +
           ",\"max_ns\":" + std::to_string(h.data.max_ns) + ",\"buckets\":[";
    for (int b = 0; b < kHistogramBuckets; ++b) {
      if (b) out += ',';
      out += std::to_string(h.data.buckets[static_cast<std::size_t>(b)]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace fdbscan::obs
