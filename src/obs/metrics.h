// Process-wide runtime metrics registry (DESIGN.md §13).
//
// The observability plane's source of truth: named monotonic counters,
// gauges and fixed-bucket histograms that the service, the engine pool,
// the sharded executor, the exec runtime and the memory tracker publish
// into. Registration (counter()/gauge()/histogram()) takes a mutex and
// returns a reference that stays valid for the life of the process;
// call sites cache it (usually in a function-local static) so every
// subsequent update is exactly one relaxed atomic RMW — no locks, no
// allocation, no syscalls on the hot path.
//
// The registry is global: two ClusterServices in one process add into
// the same counters. Consumers that need a per-window view (bench
// telemetry, tests) snapshot before and after and diff the snapshots
// with metrics_delta(). Histograms use the same log2-microsecond
// bucketing as the service's latency summaries (kLatencyBuckets in
// service/service.h mirrors kHistogramBuckets here), so a service
// histogram and its registry mirror stay bit-equal when fed the same
// nanosecond samples.
//
// Exposition: snapshot_metrics() returns a stable plain-struct view;
// to_prometheus_text() and to_json() serialize it. Names follow
// fdbscan_<subsystem>_<metric>[_total] and must match
// [a-zA-Z_][a-zA-Z0-9_]* (Prometheus-safe).
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace fdbscan::obs {

/// Log2-bucketed duration histograms: bucket i counts samples whose
/// duration in microseconds lies in [2^(i-1), 2^i) (bucket 0: < 1 us;
/// the last bucket absorbs everything larger). Must equal
/// service::kLatencyBuckets so the service mirror stays bit-equal.
inline constexpr int kHistogramBuckets = 24;

/// Monotonic counter. inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Instantaneous value. set()/add() are one relaxed atomic each;
/// update_max() is a relaxed CAS loop (rarely contended).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raise the gauge to `v` if larger (high-water-mark gauges).
  void update_max(std::int64_t v) noexcept {
    std::int64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen && !value_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

struct HistogramSnapshot {
  std::int64_t count = 0;
  std::int64_t total_ns = 0;
  std::int64_t max_ns = 0;
  std::array<std::int64_t, kHistogramBuckets> buckets{};
};

/// Fixed-bucket duration histogram. observe_ns() is four relaxed RMWs
/// (bucket, count, total, max) — identical update schedule to the
/// service's AtomicHistogram so mirrored pairs stay bit-equal.
class Histogram {
 public:
  void observe_ns(std::int64_t ns) noexcept {
    const auto us = static_cast<std::uint64_t>(ns > 0 ? ns / 1000 : 0);
    const int idx = std::min(static_cast<int>(std::bit_width(us)),
                             kHistogramBuckets - 1);
    buckets_[static_cast<std::size_t>(idx)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::int64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen && !max_ns_.compare_exchange_weak(
                            seen, ns, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] HistogramSnapshot snapshot() const noexcept {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.total_ns = total_ns_.load(std::memory_order_relaxed);
    s.max_ns = max_ns_.load(std::memory_order_relaxed);
    for (int i = 0; i < kHistogramBuckets; ++i) {
      s.buckets[static_cast<std::size_t>(i)] =
          buckets_[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::array<std::atomic<std::int64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> total_ns_{0};
  std::atomic<std::int64_t> max_ns_{0};
};

/// Look up (registering on first use) the named metric. The returned
/// reference is stable for the process lifetime. Takes a mutex — cache
/// the reference at the call site; never call per-sample. Registering
/// one name with two different kinds throws std::logic_error.
[[nodiscard]] Counter& counter(const std::string& name);
[[nodiscard]] Gauge& gauge(const std::string& name);
[[nodiscard]] Histogram& histogram(const std::string& name);

/// Point-in-time copy of every registered metric, each kind sorted by
/// name. Values are relaxed loads: concurrent updates may be partially
/// visible across entries, but each counter read is itself atomic and
/// monotone across successive snapshots.
struct MetricsSnapshot {
  struct Value {
    std::string name;
    std::int64_t value = 0;
  };
  struct Hist {
    std::string name;
    HistogramSnapshot data;
  };
  std::vector<Value> counters;
  std::vector<Value> gauges;
  std::vector<Hist> histograms;
};

[[nodiscard]] MetricsSnapshot snapshot_metrics();

/// Per-window view: counters and histogram counts/totals/buckets are
/// subtracted (`after - before`; names only in `after` keep their full
/// value), gauges keep their `after` value (instantaneous, and max_ns
/// is not subtractable — it carries `after`'s value only when the
/// window observed at least one sample, else 0).
[[nodiscard]] MetricsSnapshot metrics_delta(const MetricsSnapshot& before,
                                            const MetricsSnapshot& after);

/// Prometheus text exposition (text/plain version 0.0.4): `# TYPE`
/// lines, cumulative `_bucket{le="..."}` series with seconds-valued
/// upper bounds, `_sum` (seconds) and `_count` per histogram.
[[nodiscard]] std::string to_prometheus_text(const MetricsSnapshot& snap);

/// Single JSON object: {"counters":{name:value,...},"gauges":{...},
/// "histograms":{name:{"count":..,"total_ns":..,"max_ns":..,
/// "buckets":[..]},...}}.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snap);

}  // namespace fdbscan::obs
