// Live introspection dump (DESIGN.md §13): the "statusz" page of a
// process that has no HTTP server.
//
// statusz_text() renders the whole metrics registry as Prometheus text
// (with a comment header carrying a dump sequence number and
// timestamp). statusz_dump() writes it to the sink named by
// FDBSCAN_STATUSZ (<path>|stderr, default stderr; file dumps are
// written to <path>.tmp and renamed, so a polling reader never sees a
// partial dump) and, when tracing is active, also flushes the trace
// buffers (trace_flush() is safe against concurrent writers — see
// exec/trace.h).
//
// statusz_install() arms SIGUSR1: the handler is async-signal-safe (it
// only posts a semaphore); a dedicated thread does the formatting and
// IO. `kill -USR1 <pid>` therefore works mid-run, from a signal-unsafe
// world, without stopping the process.
#pragma once

#include <string>

namespace fdbscan::obs {

/// Render the current introspection dump (Prometheus text of the whole
/// registry plus a `# fdbscan-statusz` header). Callable from any
/// thread, any time — but not from a signal handler (it allocates).
[[nodiscard]] std::string statusz_text();

/// Render and write a dump to the FDBSCAN_STATUSZ sink now, and flush
/// the trace buffers when tracing is active. Returns the sink it wrote
/// to ("stderr" or the path), for logging.
std::string statusz_dump();

/// Arm SIGUSR1 to trigger statusz_dump() on a dedicated background
/// thread. Idempotent; returns false if the handler could not be
/// installed.
bool statusz_install();

}  // namespace fdbscan::obs
