#include "obs/log.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

#include "exec/trace.h"
#include "obs/metrics.h"

namespace fdbscan::obs {

namespace {

constexpr int kDisabled = 4;
constexpr std::int64_t kRateWindowNs = 1'000'000'000;

struct LogSink {
  std::mutex mutex;
  std::FILE* file = nullptr;  // nullptr = disabled; may be stderr
  bool owns_file = false;

  struct RateState {
    std::int64_t window_start_ns = 0;
    int emitted_in_window = 0;
    std::int64_t dropped = 0;  // since the last emitted line
  };
  std::map<std::string, RateState> rate;  // keyed by event name
};

LogSink& sink() {
  static LogSink* s = new LogSink;  // leaked: usable during static dtors
  return *s;
}

std::atomic<std::int64_t> g_dropped_total{0};

int parse_level(const char* s, int fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  if (std::strcmp(s, "debug") == 0) return 0;
  if (std::strcmp(s, "info") == 0) return 1;
  if (std::strcmp(s, "warn") == 0) return 2;
  if (std::strcmp(s, "error") == 0) return 3;
  return fallback;
}

// Must hold sink().mutex. Applies `spec` + `level_env` and publishes
// the resulting minimum level (release: the sink fields must be
// visible to any thread that sees the level).
void configure_locked(const char* spec, const char* level_env) {
  LogSink& s = sink();
  if (s.owns_file && s.file != nullptr) std::fclose(s.file);
  s.file = nullptr;
  s.owns_file = false;
  int min_level = kDisabled;
  if (spec == nullptr) {
    // Default: keep warnings/errors visible on stderr, as the ad-hoc
    // fprintf warnings were before the structured log existed.
    s.file = stderr;
    min_level = 2;
  } else if (std::strcmp(spec, "off") == 0 || std::strcmp(spec, "0") == 0 ||
             std::strcmp(spec, "none") == 0 || *spec == '\0') {
    min_level = kDisabled;
  } else if (std::strcmp(spec, "stderr") == 0) {
    s.file = stderr;
    min_level = 1;
  } else {
    s.file = std::fopen(spec, "ab");
    if (s.file != nullptr) {
      s.owns_file = true;
      min_level = 1;
    } else {
      std::fprintf(stderr, "fdbscan: cannot open FDBSCAN_LOG=\"%s\": %s\n",
                   spec, std::strerror(errno));
      s.file = stderr;
      min_level = 2;
    }
  }
  if (s.file != nullptr) {
    min_level = parse_level(level_env, min_level);
  }
  log_detail::g_log_min_level.store(min_level, std::memory_order_release);
}

void append_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

Counter& emitted_counter() {
  static Counter& c = counter("fdbscan_log_emitted_total");
  return c;
}

Counter& dropped_counter() {
  static Counter& c = counter("fdbscan_log_dropped_total");
  return c;
}

}  // namespace

namespace log_detail {

int log_state_slow() noexcept {
  LogSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  const int current = g_log_min_level.load(std::memory_order_acquire);
  if (current >= 0) return current;
  configure_locked(std::getenv("FDBSCAN_LOG"),
                   std::getenv("FDBSCAN_LOG_LEVEL"));
  return g_log_min_level.load(std::memory_order_acquire);
}

}  // namespace log_detail

void log_init(const std::string& sink_spec, LogLevel min_level) {
  LogSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  char level_buf[8];
  std::snprintf(level_buf, sizeof level_buf, "%s", level_name(min_level));
  configure_locked(sink_spec.c_str(), level_buf);
  s.rate.clear();
}

std::int64_t log_dropped_count() {
  return g_dropped_total.load(std::memory_order_relaxed);
}

void log_event(LogLevel level, const char* event,
               std::initializer_list<LogField> fields) {
  if (!log_enabled(level)) return;
  const std::int64_t now_ns = exec::trace_now_ns();
  const std::uint64_t rid = exec::trace_request_id();

  // Format the line outside the sink lock; only rate accounting and
  // the write are serialized.
  std::string line = "{\"ts_ns\":";
  line += std::to_string(now_ns);
  line += ",\"level\":\"";
  line += level_name(level);
  line += "\",\"event\":\"";
  append_escaped(line, event);
  line += "\"";
  if (rid != 0) {
    line += ",\"rid\":";
    line += std::to_string(rid);
  }
  for (const LogField& f : fields) {
    line += ",\"";
    append_escaped(line, f.key);
    line += "\":";
    switch (f.type) {
      case LogField::Type::kString:
        line += "\"";
        append_escaped(line, f.str);
        line += "\"";
        break;
      case LogField::Type::kInt:
        line += std::to_string(f.i64);
        break;
      case LogField::Type::kFloat: {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", f.f64);
        line += buf;
        break;
      }
      case LogField::Type::kBool:
        line += f.i64 != 0 ? "true" : "false";
        break;
    }
  }

  LogSink& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.file == nullptr) return;  // re-configured to off since the check
  LogSink::RateState& rate = s.rate[event];
  if (now_ns - rate.window_start_ns >= kRateWindowNs) {
    rate.window_start_ns = now_ns;
    rate.emitted_in_window = 0;
  }
  if (rate.emitted_in_window >= kLogRateLimitPerSec) {
    ++rate.dropped;
    g_dropped_total.fetch_add(1, std::memory_order_relaxed);
    dropped_counter().inc();
    return;
  }
  ++rate.emitted_in_window;
  if (rate.dropped > 0) {
    line += ",\"dropped\":";
    line += std::to_string(rate.dropped);
    rate.dropped = 0;
  }
  line += "}\n";
  emitted_counter().inc();
  std::fwrite(line.data(), 1, line.size(), s.file);
  std::fflush(s.file);
}

}  // namespace fdbscan::obs
