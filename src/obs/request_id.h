// Request-ID correlation (DESIGN.md §13).
//
// Every ClusterService::submit() mints a process-unique RequestId; the
// dispatcher installs a RequestScope around the request's whole
// lifetime (queue-wait span, engine lease, run, shard waves), which
// publishes the id into the exec trace context so every span recorded
// on that thread — and every structured log line it emits — carries
// the id. A Chrome trace and a JSONL log can then be joined per
// request (`trace_summary.py --per-request`).
//
// Ids are minted from a single process-wide atomic starting at 1; 0
// means "no request context" and is never minted.
#pragma once

#include <atomic>
#include <cstdint>

#include "exec/trace.h"

namespace fdbscan::obs {

using RequestId = std::uint64_t;

namespace request_detail {
inline std::atomic<RequestId> g_next_request_id{1};
}  // namespace request_detail

/// Mint a fresh process-unique id (monotone, never 0).
[[nodiscard]] inline RequestId mint_request_id() noexcept {
  return request_detail::g_next_request_id.fetch_add(
      1, std::memory_order_relaxed);
}

/// The id installed on the calling thread, or 0 outside any request.
[[nodiscard]] inline RequestId current_request_id() noexcept {
  return exec::trace_request_id();
}

/// RAII: installs `id` as the calling thread's request context and
/// restores the previous id on destruction (nesting-safe, so a request
/// that drives another request keeps the inner attribution).
class RequestScope {
 public:
  explicit RequestScope(RequestId id) noexcept
      : previous_(exec::trace_request_id()) {
    exec::trace_set_request_id(id);
  }
  ~RequestScope() { exec::trace_set_request_id(previous_); }

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

 private:
  RequestId previous_;
};

}  // namespace fdbscan::obs
