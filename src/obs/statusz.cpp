#include "obs/statusz.h"

#include <semaphore.h>
#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "exec/trace.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace fdbscan::obs {

namespace {

std::atomic<std::int64_t> g_dump_seq{0};
sem_t g_statusz_sem;
std::atomic<bool> g_installed{false};

// Async-signal-safe: sem_post is on the POSIX safe list; everything
// else (formatting, IO, locks) happens on the writer thread.
void on_sigusr1(int) { sem_post(&g_statusz_sem); }

void writer_loop() {
  for (;;) {
    if (sem_wait(&g_statusz_sem) != 0) continue;  // EINTR: retry
    statusz_dump();
  }
}

}  // namespace

std::string statusz_text() {
  static Counter& dumps = counter("fdbscan_statusz_dumps_total");
  dumps.inc();
  const std::int64_t seq =
      g_dump_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  std::string out = "# fdbscan-statusz seq=" + std::to_string(seq) +
                    " ts_ns=" + std::to_string(exec::trace_now_ns()) + "\n";
  out += to_prometheus_text(snapshot_metrics());
  out += "# end fdbscan-statusz seq=" + std::to_string(seq) + "\n";
  return out;
}

std::string statusz_dump() {
  const std::string text = statusz_text();
  const char* env = std::getenv("FDBSCAN_STATUSZ");
  const std::string target =
      env != nullptr && *env != '\0' ? env : "stderr";
  if (target == "stderr") {
    std::fwrite(text.data(), 1, text.size(), stderr);
    std::fflush(stderr);
  } else {
    // Write-then-rename so a reader polling the path never observes a
    // truncated dump.
    const std::string tmp = target + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::rename(tmp.c_str(), target.c_str());
    } else {
      std::fwrite(text.data(), 1, text.size(), stderr);
      std::fflush(stderr);
    }
  }
  if (exec::trace_enabled()) {
    // Live trace snapshot alongside the metrics dump. Safe against
    // concurrent recorders: in-flight (claimed, not yet committed)
    // events are skipped, never torn (exec/trace.h).
    exec::trace_flush();
  }
  log_event(LogLevel::kInfo, "statusz.dump", {{"sink", target}});
  return target;
}

bool statusz_install() {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return true;
  if (sem_init(&g_statusz_sem, 0, 0) != 0) {
    g_installed.store(false);
    return false;
  }
  std::thread(writer_loop).detach();
  struct sigaction sa;
  sa.sa_handler = on_sigusr1;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  if (sigaction(SIGUSR1, &sa, nullptr) != 0) return false;
  log_event(LogLevel::kInfo, "statusz.installed",
            {{"signal", "SIGUSR1"}});
  return true;
}

}  // namespace fdbscan::obs
