// Structured event log (DESIGN.md §13): leveled JSONL with rate
// limiting, replacing ad-hoc stderr warnings.
//
// Sink selection (first use, or log_init() programmatically):
//   FDBSCAN_LOG unset          -> stderr, minimum level warn (so the
//                                 strict-parse env warnings keep their
//                                 pre-obs visibility)
//   FDBSCAN_LOG=off|none|0     -> fully disabled
//   FDBSCAN_LOG=stderr         -> stderr, minimum level info
//   FDBSCAN_LOG=<path>         -> append to <path>, minimum level info
// FDBSCAN_LOG_LEVEL=debug|info|warn|error overrides the minimum level
// for whichever sink is active.
//
// Cost contract: a suppressed event (below the minimum level, or log
// disabled) is one relaxed atomic load and an early return — no
// allocation, no formatting, no lock. An emitted event formats one
// JSON line on the caller's stack/heap and appends it under a mutex.
// Per-event-name rate limiting (kLogRateLimitPerSec within a 1 s
// window) bounds a hot loop's damage; dropped lines are counted
// (fdbscan_log_dropped_total) and reported in a `dropped` field on the
// event's next emitted line.
//
// Every line carries: ts_ns (trace_now_ns — the same epoch as trace
// spans, so logs and traces join on time and, when a RequestScope is
// active, on the `rid` field), level, event, then the call's fields.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace fdbscan::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Emitted lines allowed per event name per one-second window.
inline constexpr int kLogRateLimitPerSec = 64;

namespace log_detail {
// Minimum level that emits: 0..3, 4 = disabled, -1 = uninitialized
// (consult FDBSCAN_LOG / FDBSCAN_LOG_LEVEL on first use).
inline std::atomic<int> g_log_min_level{-1};
int log_state_slow() noexcept;
}  // namespace log_detail

/// True when an event at `level` would be emitted. One relaxed load on
/// the fast path; call sites may use it to skip expensive field
/// computation (log_event() also checks, so guarding is optional).
[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  int min = log_detail::g_log_min_level.load(std::memory_order_relaxed);
  if (min < 0) min = log_detail::log_state_slow();
  return static_cast<int>(level) >= min;
}

/// One key/value in a log line. Keys must be string literals (or
/// otherwise outlive the log_event call); string values are borrowed
/// for the duration of the call only.
struct LogField {
  enum class Type { kString, kInt, kFloat, kBool };

  const char* key;
  Type type;
  const char* str = "";
  std::int64_t i64 = 0;
  double f64 = 0.0;

  LogField(const char* k, const char* v)
      : key(k), type(Type::kString), str(v ? v : "") {}
  LogField(const char* k, const std::string& v)
      : key(k), type(Type::kString), str(v.c_str()) {}
  LogField(const char* k, std::int64_t v)
      : key(k), type(Type::kInt), i64(v) {}
  LogField(const char* k, int v) : key(k), type(Type::kInt), i64(v) {}
  LogField(const char* k, std::uint64_t v)
      : key(k), type(Type::kInt), i64(static_cast<std::int64_t>(v)) {}
  LogField(const char* k, double v) : key(k), type(Type::kFloat), f64(v) {}
  LogField(const char* k, bool v) : key(k), type(Type::kBool), i64(v) {}
};

/// Emit one JSONL line: {"ts_ns":...,"level":"...","event":"...",
/// ["rid":N,] ...fields}. `event` should be a stable dotted name
/// ("service.env_ignored"); it is also the rate-limiting key. No-op
/// (one relaxed load) when `level` is below the sink's minimum.
void log_event(LogLevel level, const char* event,
               std::initializer_list<LogField> fields = {});

/// Programmatic (re)configuration, overriding the environment: `sink`
/// is "stderr", "off" or a file path. Primarily for tests; safe to
/// call while other threads log.
void log_init(const std::string& sink, LogLevel min_level);

/// Lines suppressed by the rate limiter since process start.
[[nodiscard]] std::int64_t log_dropped_count();

}  // namespace fdbscan::obs
