// Sharded execution of the two-phase local algorithm — the real
// incarnation of the PDSDBSCAN-style decomposition that
// distributed/distributed_dbscan.h only simulates rank-by-rank
// (DESIGN.md §11).
//
// A ShardedEngine partitions its dataset into K slabs along the widest
// domain axis, with cut coordinates balanced by point count (quantiles
// of the sorted axis coordinates) so skewed datasets still get
// near-equal owned work per shard. It materializes each shard's
// eps-halo (ghost copies of every remote point within eps of the slab —
// exactly the set needed to answer any eps-range query about an owned
// point locally), and keeps one warm Engine per shard so repeated runs
// at the same eps rebuild nothing. A fork-join run executes three
// barrier-separated waves, each wave running all K shards
// *concurrently*: every shard is driven by its own persistent team
// thread, whose kernel launches are independent top-level launches on the
// shared pool (the runtime serializes them at whole-kernel granularity —
// the legal concurrency shape; nothing here nests launches):
//
//   wave 1  per-shard BVH build/reuse         (index_construction)
//   wave 2  per-shard core determination      (preprocessing)
//   -- barrier: stands in for the ghost core-flag exchange --
//   wave 3  per-shard traversal + global union-find  (main)
//   coordinator: flatten + finalize           (finalization)
//
// In graph mode (exec/graph, the default; FDBSCAN_SERVICE_GRAPH=0 falls
// back to the waves) the same per-shard bodies become task-graph nodes
// and the barriers become edges: index[r] -> pre[r] -> main[r] chains
// per shard, with pre[s] -> main[r] for every (s, r) pair standing in
// for the ghost core-flag exchange (main reads ghost flags other shards
// wrote). Shard r's traversal can therefore start before shard r+1's
// build finishes — on the FoF fast path (no pre wave) each shard
// pipelines fully independently — and nodes of *different* requests
// interleave on the shared runner pool. The kernel launches are the
// same set either way, so work counters stay bit-identical.
//
// Cross-shard density connections resolve through a single global
// union-find over a shared label array: each eps-close pair is processed
// exactly once, by the shard owning its lower-global-id endpoint (which
// always holds both endpoints thanks to the halo invariant). The merged
// clustering is therefore the same edge set a single Engine resolves —
// labels agree up to cluster renumbering, core flags and cluster count
// agree exactly (tests/test_sharded.cpp).
//
// Cancellation: the coordinator's active CancelToken is re-installed on
// every team thread for each wave, so a raised token stops all shards
// within one chunk-quantum; the coordinator joins the wave, then rethrows
// CancelledError. Engines and plans only publish fully-built state, so a
// cancelled ShardedEngine stays valid for the next run.
//
// Thread-safety: one ShardedEngine = one concurrent run (same contract as
// Engine).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.h"
#include "core/clustering.h"
#include "core/engine.h"
#include "exec/cancel.h"
#include "exec/graph/task_graph.h"
#include "exec/per_thread.h"
#include "exec/profile.h"
#include "exec/trace.h"
#include "exec/workspace.h"
#include "geometry/box.h"
#include "geometry/point.h"
#include "obs/metrics.h"
#include "obs/request_id.h"
#include "unionfind/union_find.h"

namespace fdbscan::shard {

/// Per-shard decomposition statistics — the communication volume a real
/// exchange would ship for this shard plus its share of the boundary
/// stitching work.
struct ShardStats {
  std::int32_t owned = 0;
  std::int32_t ghosts = 0;        ///< halo points received from peers
  std::int64_t cross_edges = 0;   ///< pair-once edges with a ghost endpoint
  std::int64_t halo_bytes = 0;    ///< coords + global id in, core flag back
};

/// A sharded run's product: the merged clustering (its Clustering carries
/// the num_shards/shard_* totals) plus the per-shard breakdown.
struct ShardedResult {
  Clustering clustering;
  std::vector<ShardStats> shards;
};

/// Cumulative amortization counters since ShardedEngine construction.
struct ShardedCounters {
  std::int64_t runs = 0;
  std::int64_t plans_built = 0;       ///< eps-plan constructions (cache misses)
  std::int64_t plan_cache_hits = 0;   ///< eps-plan reuses
  std::int64_t plan_cache_evictions = 0;
  std::int64_t index_builds = 0;      ///< per-shard BVH constructions
  std::int64_t workspace_reallocs = 0;
};

namespace detail {

/// Registry mirrors (DESIGN.md §13): process-wide sharded-execution
/// totals across every ShardedEngine.
struct ShardMetrics {
  obs::Counter& runs = obs::counter("fdbscan_shard_runs_total");
  obs::Counter& waves = obs::counter("fdbscan_shard_waves_total");
};

inline ShardMetrics& shard_metrics() {
  static ShardMetrics m;
  return m;
}

/// K persistent threads, one per shard. run(fn, token) executes fn(s) on
/// member s for every shard concurrently and returns after all members
/// finish (the wave barrier). Members are plain std::threads, so their
/// kernel launches are ordinary top-level launches; each member installs
/// `token` for the duration of its wave so cancellation reaches every
/// shard's chunks. Exceptions are collected per member and rethrown on
/// the coordinator after the barrier, preferring CancelledError so a
/// cancel racing an unrelated failure reports the cancel.
class ShardTeam {
 public:
  explicit ShardTeam(std::int32_t size)
      : errors_(static_cast<std::size_t>(size)) {
    members_.reserve(static_cast<std::size_t>(size));
    for (std::int32_t s = 0; s < size; ++s) {
      members_.emplace_back([this, s] { member_loop(s); });
    }
  }

  ~ShardTeam() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_work_.notify_all();
    for (auto& t : members_) t.join();
  }

  ShardTeam(const ShardTeam&) = delete;
  ShardTeam& operator=(const ShardTeam&) = delete;

  void run(const std::function<void(std::int32_t)>& fn,
           const exec::CancelToken* token) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      fn_ = &fn;
      token_ = token;
      // Members inherit the coordinator's request id for the wave, so
      // their spans/log lines attribute to the request being served.
      rid_ = exec::trace_request_id();
      for (auto& e : errors_) e = nullptr;
      pending_ = static_cast<std::int32_t>(members_.size());
      ++generation_;
      cv_work_.notify_all();
      cv_done_.wait(lock, [&] { return pending_ == 0; });
      fn_ = nullptr;
      token_ = nullptr;
    }
    std::exception_ptr cancelled;
    std::exception_ptr other;
    for (const auto& e : errors_) {
      if (!e) continue;
      try {
        std::rethrow_exception(e);
      } catch (const exec::CancelledError&) {
        if (!cancelled) cancelled = e;
      } catch (...) {
        if (!other) other = e;
      }
    }
    if (cancelled) std::rethrow_exception(cancelled);
    if (other) std::rethrow_exception(other);
  }

 private:
  void member_loop(std::int32_t member) {
    exec::trace_register_thread(
        ("shard-" + std::to_string(member)).c_str());
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::int32_t)>* fn = nullptr;
      const exec::CancelToken* token = nullptr;
      std::uint64_t rid = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_work_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        fn = fn_;
        token = token_;
        rid = rid_;
      }
      try {
        obs::RequestScope rid_scope(rid);
        std::optional<exec::CancelScope> scope;
        if (token) scope.emplace(*token);
        (*fn)(member);
      } catch (...) {
        // Published to the coordinator via the pending_ decrement below
        // (mutex release/acquire orders the write).
        errors_[static_cast<std::size_t>(member)] = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) cv_done_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::int32_t)>* fn_ = nullptr;
  const exec::CancelToken* token_ = nullptr;
  std::uint64_t rid_ = 0;  // coordinator's request id for this wave
  std::uint64_t generation_ = 0;
  std::int32_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
  std::vector<std::thread> members_;
};

}  // namespace detail

template <int DIM>
class ShardedEngine {
 public:
  /// Borrows `points` like Engine does: the caller keeps the vector alive
  /// and unmodified for the ShardedEngine's lifetime. Throws
  /// std::invalid_argument when num_shards < 1 (the checked front door,
  /// cluster_sharded() below, rejects that as ErrorCode::kInvalidShards
  /// before reaching this).
  explicit ShardedEngine(const std::vector<Point<DIM>>& points,
                         std::int32_t num_shards)
      : points_(&points),
        num_shards_(num_shards),
        workspace_(kNumSlots) {
    if (num_shards < 1) {
      throw std::invalid_argument("ShardedEngine: num_shards must be >= 1");
    }
    if (num_shards > 1) {
      team_ = std::make_unique<detail::ShardTeam>(num_shards);
    }
  }

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return points_->size(); }
  [[nodiscard]] const std::vector<Point<DIM>>& points() const noexcept {
    return *points_;
  }
  [[nodiscard]] std::int32_t num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] const ShardedCounters& counters() const noexcept {
    return counters_;
  }

  /// FDBSCAN over the engine's points, decomposed across the shards.
  /// Labels are equivalent to a single Engine::run (same edge set through
  /// the union-find; cluster ids may be permuted), and is_core /
  /// num_clusters agree exactly. The eps-halo plan and the per-shard
  /// BVHs are cached, so repeated runs at the same eps rebuild nothing.
  /// Note: the pair-once rule replaces the masked-traversal optimization
  /// (it needs global-id order, not leaf order), so
  /// options.masked_traversal is ignored on this path. Dispatches to the
  /// task graph or the fork-join waves per the FDBSCAN_SERVICE_GRAPH
  /// knob; work counters are bit-identical between the two.
  [[nodiscard]] ShardedResult run(const Parameters& params,
                                  const Options& options = {}) {
    return run(params, options, exec::graph::enabled());
  }

  /// Same, with the mode picked explicitly (equivalence tests sweep it).
  [[nodiscard]] ShardedResult run(const Parameters& params,
                                  const Options& options, bool graph) {
    if (graph && num_shards_ > 1) {
      exec::graph::TaskGraph g;
      auto out = std::make_shared<ShardedResult>();
      stage(g, params, options, out);
      const Expected<exec::graph::GraphStats> done =
          exec::graph::shared_scheduler().run(std::move(g));
      if (!done.has_value()) {
        // Unreachable: stage() emits a DAG by construction. Surface it
        // loudly rather than return a half-written result.
        throw std::logic_error(done.error().message);
      }
      return std::move(*out);
    }
    const auto n = static_cast<std::int64_t>(points_->size());
    ShardedResult result;
    result.shards.resize(static_cast<std::size_t>(num_shards_));
    if (n == 0) return result;
    exec::throw_if_cancelled();
    ++counters_.runs;
    detail::shard_metrics().runs.inc();
    const std::int64_t ws0 = workspace_.reallocs();
    const float eps2 = params.eps * params.eps;
    exec::PhaseProfiler timer;
    PhaseTimings timings;

    Plan& plan = ensure_plan(params.eps);

    // --- Wave 1: per-shard index build/reuse -----------------------------
    std::int32_t rebuilds = 0;
    for (const auto& s : plan.shards) {
      if (s.engine && !s.engine->index_built()) ++rebuilds;
    }
    for_each_shard([&](std::int32_t r) {
      Shard& s = plan.shards[static_cast<std::size_t>(r)];
      if (s.engine) (void)s.engine->index();
    });
    timings.index_construction =
        timer.lap("shard/index", &timings.index_construction_profile);

    // --- Wave 2: per-shard core determination ----------------------------
    // Each shard writes only its owned points' flags, so there are no
    // write races; ghost flags become visible to wave 3 through the wave
    // barrier — the stand-in for the ghost core-flag exchange.
    std::vector<std::uint8_t> is_core(points_->size(), 0);
    std::vector<TraversalStats> shard_work(
        static_cast<std::size_t>(num_shards_));
    const bool fof = params.minpts == 2;  // Friends-of-Friends fast path
    if (!fof) {
      for_each_shard([&](std::int32_t r) {
        Shard& s = plan.shards[static_cast<std::size_t>(r)];
        if (s.owned == 0) return;
        if (params.minpts <= 1) {
          exec::parallel_for("shard/pre/all-core", s.owned,
                             [&](std::int64_t k) {
            is_core[static_cast<std::size_t>(
                s.ids[static_cast<std::size_t>(k)])] = 1;
          });
          return;
        }
        const Bvh<DIM>& bvh = s.engine->index();
        exec::PerThread<TraversalStats> work;
        exec::parallel_for("shard/pre/core-count", s.owned,
                           [&](std::int64_t k) {
          const auto& p = s.local_points[static_cast<std::size_t>(k)];
          std::int32_t count = 0;  // the traversal finds p itself
          TraversalStats stats;  // stack-local: increments stay in registers
          bvh.for_each_near(
              p, eps2, 0,
              [&](std::int32_t, std::int32_t) {
                ++count;
                return (options.early_exit && count >= params.minpts)
                           ? TraversalControl::kTerminate
                           : TraversalControl::kContinue;
              },
              &stats);
          if (count >= params.minpts) {
            is_core[static_cast<std::size_t>(
                s.ids[static_cast<std::size_t>(k)])] = 1;
          }
          work.local() += stats;
        });
        shard_work[static_cast<std::size_t>(r)] += work.combine();
      });
    }
    timings.preprocessing =
        timer.lap("shard/pre", &timings.preprocessing_profile);

    // --- Wave 3: per-shard traversal + global union-find -----------------
    // Pair-once rule: the shard owning the globally-smaller id resolves
    // the edge — it always holds both endpoints thanks to the halo. The
    // UnionFindView is lock-free, so concurrent shards merging into the
    // shared parents array is exactly the single-engine main phase's
    // concurrency shape.
    std::span<std::int32_t> labels =
        workspace_.acquire<std::int32_t>(kUnionFind, points_->size());
    init_singletons(labels.data(), static_cast<std::int32_t>(n));
    UnionFindView uf(labels.data(), static_cast<std::int32_t>(n));
    std::vector<std::int64_t> shard_cross(
        static_cast<std::size_t>(num_shards_), 0);
    for_each_shard([&](std::int32_t r) {
      Shard& s = plan.shards[static_cast<std::size_t>(r)];
      if (s.owned == 0) return;
      const Bvh<DIM>& bvh = s.engine->index();
      exec::PerThread<TraversalStats> work;
      exec::PerThread<std::int64_t> cross;
      exec::parallel_for("shard/main/traverse-union", s.owned,
                         [&](std::int64_t k) {
        const std::int32_t x = s.ids[static_cast<std::size_t>(k)];
        const auto& p = s.local_points[static_cast<std::size_t>(k)];
        std::int64_t local_cross = 0;
        TraversalStats stats;
        bvh.for_each_near(
            p, eps2, 0,
            [&](std::int32_t, std::int32_t local_y) {
              const std::int32_t y =
                  s.ids[static_cast<std::size_t>(local_y)];
              if (y > x) {
                if (local_y >= s.owned) ++local_cross;  // ghost endpoint
                if (fof) {
                  // Any eps-close pair consists of two core points. The
                  // ghost's flag is also set by its owner — atomic
                  // because two shards may store concurrently.
                  exec::atomic_store_relaxed(
                      is_core[static_cast<std::size_t>(x)], std::uint8_t{1});
                  exec::atomic_store_relaxed(
                      is_core[static_cast<std::size_t>(y)], std::uint8_t{1});
                  uf.merge(x, y);
                } else {
                  fdbscan::detail::resolve_pair(uf, is_core, x, y,
                                                options.variant);
                }
              }
              return TraversalControl::kContinue;
            },
            &stats);
        work.local() += stats;
        if (local_cross > 0) cross.local() += local_cross;
      });
      shard_work[static_cast<std::size_t>(r)] += work.combine();
      shard_cross[static_cast<std::size_t>(r)] = cross.combine();
    });
    timings.main = timer.lap("shard/main", &timings.main_profile);

    // --- Finalization: global flatten + relabel on the coordinator -------
    flatten(labels.data(), static_cast<std::int32_t>(n));
    std::span<std::int32_t> compact =
        workspace_.acquire<std::int32_t>(kCompact, points_->size());
    result.clustering = fdbscan::detail::finalize_labels_with_scratch(
        labels.data(), n, std::move(is_core), compact.data());
    timings.finalization =
        timer.lap("shard/finalize", &timings.finalization_profile);

    counters_.index_builds += rebuilds;
    counters_.workspace_reallocs = workspace_.reallocs();
    timings.engine_run = true;
    timings.index_rebuilds = rebuilds;
    timings.workspace_reallocs =
        static_cast<std::int32_t>(workspace_.reallocs() - ws0);
    result.clustering.timings = timings;

    TraversalStats total_work;
    for (const auto& w : shard_work) total_work += w;
    result.clustering.distance_computations = total_work.leaves_tested;
    result.clustering.index_nodes_visited = total_work.nodes_visited;

    result.clustering.num_shards = num_shards_;
    std::int64_t cross_total = 0;
    for (std::int32_t r = 0; r < num_shards_; ++r) {
      const Shard& s = plan.shards[static_cast<std::size_t>(r)];
      ShardStats& st = result.shards[static_cast<std::size_t>(r)];
      st.owned = s.owned;
      st.ghosts = static_cast<std::int32_t>(s.ids.size()) - s.owned;
      st.cross_edges = shard_cross[static_cast<std::size_t>(r)];
      st.halo_bytes = static_cast<std::int64_t>(st.ghosts) * kBytesPerGhost;
      result.clustering.shard_ghosts += st.ghosts;
      result.clustering.shard_halo_bytes += st.halo_bytes;
      cross_total += st.cross_edges;
    }
    result.clustering.shard_cross_edges = cross_total;
    return result;
  }

  /// Append this run to `g` as dependency-edged per-shard nodes (the
  /// graph shape in the header comment); the finalize node writes the
  /// merged result into *out. Returns the finalize node's id so callers
  /// can chain further work after it. Counts as a run: the cancel
  /// fast-fail and the eps-plan build happen here on the staging thread,
  /// exactly where the fork-join path does them before wave 1.
  exec::graph::NodeId stage(exec::graph::TaskGraph& g,
                            const Parameters& params, const Options& options,
                            std::shared_ptr<ShardedResult> out) {
    const auto n = static_cast<std::int64_t>(points_->size());
    out->shards.resize(static_cast<std::size_t>(num_shards_));
    if (n == 0) return g.add_node("shard/finalize", [] {});
    exec::throw_if_cancelled();
    ++counters_.runs;
    detail::shard_metrics().runs.inc();

    auto st = std::make_shared<GraphState>();
    st->params = params;
    st->options = options;
    st->eps2 = params.eps * params.eps;
    st->n = n;
    st->ws0 = workspace_.reallocs();
    st->plan = &ensure_plan(params.eps);
    st->fof = params.minpts == 2;  // Friends-of-Friends fast path
    for (const auto& s : st->plan->shards) {
      if (s.engine && !s.engine->index_built()) ++st->rebuilds;
    }
    st->is_core.assign(points_->size(), 0);
    st->shard_work.resize(static_cast<std::size_t>(num_shards_));
    st->shard_cross.assign(static_cast<std::size_t>(num_shards_), 0);
    // Logical wave tally for the dashboards: the graph replaces the wave
    // barriers with edges but still executes the same two or three waves.
    detail::shard_metrics().waves.inc(st->fof ? 2 : 3);

    std::vector<exec::graph::NodeId> index_ids(
        static_cast<std::size_t>(num_shards_), exec::graph::kNoNode);
    std::vector<exec::graph::NodeId> pre_ids;
    std::vector<exec::graph::NodeId> main_ids(
        static_cast<std::size_t>(num_shards_), exec::graph::kNoNode);

    // --- index[r]: per-shard BVH build/reuse (wave 1's body) -------------
    for (std::int32_t r = 0; r < num_shards_; ++r) {
      index_ids[static_cast<std::size_t>(r)] = g.add_node(
          "shard/index[" + std::to_string(r) + "]", [this, st, r] {
            const std::int64_t t0 = exec::trace_now_ns();
            Shard& s = st->plan->shards[static_cast<std::size_t>(r)];
            if (s.engine) (void)s.engine->index();
            st->index_ns.fetch_add(exec::trace_now_ns() - t0,
                                   std::memory_order_relaxed);
          });
    }

    // --- pre[r]: per-shard core determination (wave 2's body) ------------
    // Each shard writes only its owned points' flags; main[r] reads ghost
    // flags other shards wrote, so every pre -> every main edge below is
    // the ghost core-flag exchange the fork-join barrier stands in for.
    if (!st->fof) {
      pre_ids.resize(static_cast<std::size_t>(num_shards_),
                     exec::graph::kNoNode);
      for (std::int32_t r = 0; r < num_shards_; ++r) {
        pre_ids[static_cast<std::size_t>(r)] = g.add_node(
            "shard/pre[" + std::to_string(r) + "]", [this, st, r] {
              const std::int64_t t0 = exec::trace_now_ns();
              Shard& s = st->plan->shards[static_cast<std::size_t>(r)];
              const Parameters params = st->params;
              const Options& options = st->options;
              const float eps2 = st->eps2;
              auto& is_core = st->is_core;
              if (s.owned > 0) {
                if (params.minpts <= 1) {
                  exec::parallel_for("shard/pre/all-core", s.owned,
                                     [&](std::int64_t k) {
                    is_core[static_cast<std::size_t>(
                        s.ids[static_cast<std::size_t>(k)])] = 1;
                  });
                } else {
                  const Bvh<DIM>& bvh = s.engine->index();
                  exec::PerThread<TraversalStats> work;
                  exec::parallel_for("shard/pre/core-count", s.owned,
                                     [&](std::int64_t k) {
                    const auto& p =
                        s.local_points[static_cast<std::size_t>(k)];
                    std::int32_t count = 0;  // the traversal finds p itself
                    TraversalStats stats;
                    bvh.for_each_near(
                        p, eps2, 0,
                        [&](std::int32_t, std::int32_t) {
                          ++count;
                          return (options.early_exit &&
                                  count >= params.minpts)
                                     ? TraversalControl::kTerminate
                                     : TraversalControl::kContinue;
                        },
                        &stats);
                    if (count >= params.minpts) {
                      is_core[static_cast<std::size_t>(
                          s.ids[static_cast<std::size_t>(k)])] = 1;
                    }
                    work.local() += stats;
                  });
                  st->shard_work[static_cast<std::size_t>(r)] +=
                      work.combine();
                }
              }
              st->pre_ns.fetch_add(exec::trace_now_ns() - t0,
                                   std::memory_order_relaxed);
            });
        g.add_edge(index_ids[static_cast<std::size_t>(r)],
                   pre_ids[static_cast<std::size_t>(r)]);
      }
    }

    // --- init: global union-find singletons (coordinator work) -----------
    const exec::graph::NodeId init_id =
        g.add_node("shard/main/init", [this, st] {
          st->labels =
              workspace_.acquire<std::int32_t>(kUnionFind, points_->size());
          init_singletons(st->labels.data(),
                          static_cast<std::int32_t>(st->n));
        });

    // --- main[r]: per-shard traversal + global union-find (wave 3) ------
    for (std::int32_t r = 0; r < num_shards_; ++r) {
      main_ids[static_cast<std::size_t>(r)] = g.add_node(
          "shard/main[" + std::to_string(r) + "]", [this, st, r] {
            const std::int64_t t0 = exec::trace_now_ns();
            Shard& s = st->plan->shards[static_cast<std::size_t>(r)];
            const Options& options = st->options;
            const float eps2 = st->eps2;
            const bool fof = st->fof;
            auto& is_core = st->is_core;
            if (s.owned > 0) {
              const Bvh<DIM>& bvh = s.engine->index();
              UnionFindView uf(st->labels.data(),
                               static_cast<std::int32_t>(st->n));
              exec::PerThread<TraversalStats> work;
              exec::PerThread<std::int64_t> cross;
              exec::parallel_for("shard/main/traverse-union", s.owned,
                                 [&](std::int64_t k) {
                const std::int32_t x = s.ids[static_cast<std::size_t>(k)];
                const auto& p = s.local_points[static_cast<std::size_t>(k)];
                std::int64_t local_cross = 0;
                TraversalStats stats;
                bvh.for_each_near(
                    p, eps2, 0,
                    [&](std::int32_t, std::int32_t local_y) {
                      const std::int32_t y =
                          s.ids[static_cast<std::size_t>(local_y)];
                      if (y > x) {
                        if (local_y >= s.owned) ++local_cross;  // ghost
                        if (fof) {
                          exec::atomic_store_relaxed(
                              is_core[static_cast<std::size_t>(x)],
                              std::uint8_t{1});
                          exec::atomic_store_relaxed(
                              is_core[static_cast<std::size_t>(y)],
                              std::uint8_t{1});
                          uf.merge(x, y);
                        } else {
                          fdbscan::detail::resolve_pair(uf, is_core, x, y,
                                                        options.variant);
                        }
                      }
                      return TraversalControl::kContinue;
                    },
                    &stats);
                work.local() += stats;
                if (local_cross > 0) cross.local() += local_cross;
              });
              st->shard_work[static_cast<std::size_t>(r)] += work.combine();
              st->shard_cross[static_cast<std::size_t>(r)] = cross.combine();
            }
            st->main_ns.fetch_add(exec::trace_now_ns() - t0,
                                  std::memory_order_relaxed);
          });
      g.add_edge(index_ids[static_cast<std::size_t>(r)],
                 main_ids[static_cast<std::size_t>(r)]);
      g.add_edge(init_id, main_ids[static_cast<std::size_t>(r)]);
      for (const exec::graph::NodeId pre : pre_ids) {
        g.add_edge(pre, main_ids[static_cast<std::size_t>(r)]);
      }
    }

    // --- finalize: global flatten + relabel + stats (coordinator) --------
    const exec::graph::NodeId finalize_id =
        g.add_node("shard/finalize", [this, st, out] {
          const std::int64_t t0 = exec::trace_now_ns();
          flatten(st->labels.data(), static_cast<std::int32_t>(st->n));
          std::span<std::int32_t> compact =
              workspace_.acquire<std::int32_t>(kCompact, points_->size());
          out->clustering = fdbscan::detail::finalize_labels_with_scratch(
              st->labels.data(), st->n, std::move(st->is_core),
              compact.data());

          // Phase seconds are per-shard node busy sums — they can exceed
          // the graph's wall clock when shards overlap (stream-style
          // accounting). The per-phase kernel profiles need the barrier
          // snapshots the graph removes, so they stay zero here.
          PhaseTimings timings;
          timings.index_construction =
              static_cast<double>(
                  st->index_ns.load(std::memory_order_relaxed)) *
              1e-9;
          timings.preprocessing =
              static_cast<double>(st->pre_ns.load(std::memory_order_relaxed)) *
              1e-9;
          timings.main =
              static_cast<double>(
                  st->main_ns.load(std::memory_order_relaxed)) *
              1e-9;
          counters_.index_builds += st->rebuilds;
          counters_.workspace_reallocs = workspace_.reallocs();
          timings.engine_run = true;
          timings.index_rebuilds = st->rebuilds;
          timings.workspace_reallocs =
              static_cast<std::int32_t>(workspace_.reallocs() - st->ws0);

          TraversalStats total_work;
          for (const auto& w : st->shard_work) total_work += w;
          out->clustering.distance_computations = total_work.leaves_tested;
          out->clustering.index_nodes_visited = total_work.nodes_visited;

          out->clustering.num_shards = num_shards_;
          std::int64_t cross_total = 0;
          for (std::int32_t r = 0; r < num_shards_; ++r) {
            const Shard& s = st->plan->shards[static_cast<std::size_t>(r)];
            ShardStats& stats = out->shards[static_cast<std::size_t>(r)];
            stats.owned = s.owned;
            stats.ghosts = static_cast<std::int32_t>(s.ids.size()) - s.owned;
            stats.cross_edges = st->shard_cross[static_cast<std::size_t>(r)];
            stats.halo_bytes =
                static_cast<std::int64_t>(stats.ghosts) * kBytesPerGhost;
            out->clustering.shard_ghosts += stats.ghosts;
            out->clustering.shard_halo_bytes += stats.halo_bytes;
            cross_total += stats.cross_edges;
          }
          out->clustering.shard_cross_edges = cross_total;
          timings.finalization =
              static_cast<double>(exec::trace_now_ns() - t0) * 1e-9;
          out->clustering.timings = timings;
        });
    for (const exec::graph::NodeId main : main_ids) {
      g.add_edge(main, finalize_id);
    }
    return finalize_id;
  }

 private:
  // Workspace slots: global union-find parents + finalization ranks.
  enum Slot : int { kUnionFind = 0, kCompact, kNumSlots };

  /// What a real exchange ships per ghost: its coordinates and global id
  /// on the way in, its owner's core flag on the way back.
  static constexpr std::int64_t kBytesPerGhost =
      static_cast<std::int64_t>(sizeof(Point<DIM>)) +
      static_cast<std::int64_t>(sizeof(std::int32_t)) +
      static_cast<std::int64_t>(sizeof(std::uint8_t));

  struct Shard {
    /// Global ids of this shard's local points: owned first, ghosts after
    /// (so `ids[k]` for k < owned are the owned points, mirroring the
    /// local_points layout the per-shard Engine indexes).
    std::vector<std::int32_t> ids;
    std::int32_t owned = 0;
    /// Gathered local coordinates — the address-stable backing store the
    /// per-shard Engine borrows (never resized once the engine exists).
    std::vector<Point<DIM>> local_points;
    std::unique_ptr<Engine<DIM>> engine;  // null when owned == 0
  };

  /// An eps-keyed decomposition: the ghost sets (and therefore the local
  /// point sets and their BVHs) depend on eps, so plans are cached like
  /// the Engine's DenseBox bundles — a small LRU keyed by eps.
  struct Plan {
    float eps = 0.0f;
    std::uint64_t last_use = 0;  // LRU stamp
    std::vector<Shard> shards;
  };

  static constexpr std::int32_t kPlanCapacity = 2;

  /// Shared state of one staged (graph-mode) run, owned jointly by the
  /// run's nodes. The atomics accumulate per-shard node busy time into
  /// the phase timings — the process-global PhaseProfiler would need the
  /// barrier snapshots the graph removes. The Plan pointer is stable:
  /// one run at a time, and plans only leave the cache in ensure_plan,
  /// which stage() calls before any node is queued.
  struct GraphState {
    Parameters params;
    Options options;
    float eps2 = 0.0f;
    std::int64_t n = 0;
    std::int64_t ws0 = 0;
    std::int32_t rebuilds = 0;
    Plan* plan = nullptr;
    bool fof = false;
    std::vector<std::uint8_t> is_core;
    std::vector<TraversalStats> shard_work;
    std::vector<std::int64_t> shard_cross;
    std::span<std::int32_t> labels;
    std::atomic<std::int64_t> index_ns{0};
    std::atomic<std::int64_t> pre_ns{0};
    std::atomic<std::int64_t> main_ns{0};
  };

  /// Runs fn(r) for every shard: concurrently on the team when K > 1
  /// (re-installing the coordinator's active token on every member for
  /// the wave), inline when K == 1.
  template <class Fn>
  void for_each_shard(Fn&& fn) {
    detail::shard_metrics().waves.inc();
    if (!team_) {
      for (std::int32_t r = 0; r < num_shards_; ++r) fn(r);
      return;
    }
    const std::function<void(std::int32_t)> body = std::forward<Fn>(fn);
    team_->run(body, exec::active_cancel_token());
  }

  /// Eps-independent half of the decomposition: slab axis, cost-balanced
  /// cut coordinates, and the owner of every point, computed once. Cuts
  /// are point-count quantiles along the widest domain axis — shard r
  /// owns the points whose axis coordinate lands in (cuts[r-1], cuts[r]]
  /// — so a skewed dataset gets near-equal owned counts per shard where
  /// equal-width slabs would pile most of the work onto a few of them.
  /// Coordinate ties all stay in the lowest shard whose cut covers them
  /// (the cut is inclusive), so heavy duplicates — or n < K — leave some
  /// shards owning nothing; a zero-width domain (all points identical
  /// along every axis) degenerates to shard 0 owning all, as before.
  void ensure_decomposition() {
    if (decomposition_valid_) return;
    const auto n = static_cast<std::int64_t>(points_->size());
    domain_ = bounds_of(points_->data(), points_->size());
    axis_ = 0;
    for (int d = 1; d < DIM; ++d) {
      if (domain_.max[d] - domain_.min[d] >
          domain_.max[axis_] - domain_.min[axis_]) {
        axis_ = d;
      }
    }
    std::vector<float> coords(points_->size());
    exec::parallel_for("shard/plan/axis-gather", n, [&](std::int64_t i) {
      coords[static_cast<std::size_t>(i)] =
          (*points_)[static_cast<std::size_t>(i)][axis_];
    });
    std::sort(coords.begin(), coords.end());
    cuts_.assign(static_cast<std::size_t>(num_shards_ - 1), 0.0f);
    for (std::int32_t r = 0; n > 0 && r + 1 < num_shards_; ++r) {
      // The coordinate of shard r's last owned rank at perfect balance.
      // Ranks over the sorted copy are non-decreasing, so cuts are too.
      const std::int64_t rank = std::clamp<std::int64_t>(
          (static_cast<std::int64_t>(r) + 1) * n / num_shards_ - 1, 0, n - 1);
      cuts_[static_cast<std::size_t>(r)] =
          coords[static_cast<std::size_t>(rank)];
    }
    owner_.resize(points_->size());
    exec::parallel_for("shard/plan/owner", n, [&](std::int64_t i) {
      const float c = (*points_)[static_cast<std::size_t>(i)][axis_];
      owner_[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(
          std::lower_bound(cuts_.begin(), cuts_.end(), c) - cuts_.begin());
    });
    decomposition_valid_ = true;
  }

  /// Shard r's slab between its balanced cuts. An owned point satisfies
  /// cuts[r-1] < coord <= cuts[r], so it always lies inside its closed
  /// box and the halo invariant holds. The last slab's upper face is
  /// pinned to the exact domain bound (every coordinate above the last
  /// cut must land inside it — no rounding slack).
  [[nodiscard]] Box<DIM> shard_box(std::int32_t r) const noexcept {
    Box<DIM> box = domain_;
    if (r > 0) box.min[axis_] = cuts_[static_cast<std::size_t>(r - 1)];
    box.max[axis_] = (r + 1 == num_shards_)
                         ? domain_.max[axis_]
                         : cuts_[static_cast<std::size_t>(r)];
    return box;
  }

  Plan& ensure_plan(float eps) {
    ensure_decomposition();
    for (auto& plan : plans_) {
      if (plan->eps == eps) {
        ++counters_.plan_cache_hits;
        plan->last_use = ++use_clock_;
        return *plan;
      }
    }

    // Miss: build the decomposition for this eps — the halo exchange.
    while (static_cast<std::int32_t>(plans_.size()) >= kPlanCapacity) {
      auto lru = plans_.begin();
      for (auto it = plans_.begin(); it != plans_.end(); ++it) {
        if ((*it)->last_use < (*lru)->last_use) lru = it;
      }
      ++counters_.plan_cache_evictions;
      plans_.erase(lru);
    }

    const auto& points = *points_;
    const auto n = static_cast<std::int64_t>(points.size());
    const float eps2 = eps * eps;
    auto plan = std::make_unique<Plan>();
    plan->eps = eps;
    plan->last_use = ++use_clock_;
    // Shards are filled in place and never resized afterwards: each
    // Engine borrows its shard's local_points by address.
    plan->shards.resize(static_cast<std::size_t>(num_shards_));
    for (std::int32_t r = 0; r < num_shards_; ++r) {
      Shard& s = plan->shards[static_cast<std::size_t>(r)];
      const Box<DIM> box = shard_box(r);
      for (std::int32_t i = 0; i < n; ++i) {
        if (owner_[static_cast<std::size_t>(i)] == r) s.ids.push_back(i);
      }
      s.owned = static_cast<std::int32_t>(s.ids.size());
      for (std::int32_t i = 0; i < n; ++i) {
        if (owner_[static_cast<std::size_t>(i)] != r &&
            squared_distance(points[static_cast<std::size_t>(i)], box) <=
                eps2) {
          s.ids.push_back(i);  // ghost
        }
      }
      // A shard with no owned points answers no queries: it keeps its
      // ghost tally for the stats but builds neither points nor engine.
      if (s.owned > 0) {
        // One gather fills both layouts: the AoS copy the engine borrows
        // by address, and the SoA mirror its index build consumes
        // (released by the engine after the build).
        s.local_points.resize(s.ids.size());
        PointsStore<DIM> soa;
        soa.resize(static_cast<std::int64_t>(s.ids.size()));
        exec::parallel_for("shard/plan/gather",
                           static_cast<std::int64_t>(s.ids.size()),
                           [&](std::int64_t k) {
          const auto& p = points[static_cast<std::size_t>(
              s.ids[static_cast<std::size_t>(k)])];
          s.local_points[static_cast<std::size_t>(k)] = p;
          soa.set(k, p);
        });
        s.engine =
            std::make_unique<Engine<DIM>>(s.local_points, std::move(soa));
      }
    }
    ++counters_.plans_built;
    plans_.push_back(std::move(plan));
    return *plans_.back();
  }

  const std::vector<Point<DIM>>* points_;
  std::int32_t num_shards_;
  exec::Workspace workspace_;
  std::unique_ptr<detail::ShardTeam> team_;  // null when num_shards_ == 1
  std::vector<std::unique_ptr<Plan>> plans_;
  std::uint64_t use_clock_ = 0;
  Box<DIM> domain_ = Box<DIM>::empty();
  int axis_ = 0;
  std::vector<float> cuts_;  // K-1 non-decreasing slab boundaries
  std::vector<std::int32_t> owner_;
  bool decomposition_valid_ = false;
  ShardedCounters counters_;
};

/// Checked sharded clustering: the same typed-error validation as
/// cluster() (core/cluster.h), so sharded requests reject malformed input
/// with the same ErrorCodes as single-engine ones.
template <int DIM>
[[nodiscard]] Expected<ShardedResult> cluster_sharded(
    ShardedEngine<DIM>& engine, const Parameters& params,
    const Options& options = {}) {
  if (auto error = validate_shard_count(engine.num_shards())) {
    return *std::move(error);
  }
  if (auto error = validate_input(engine.points(), params, options)) {
    return *std::move(error);
  }
  return engine.run(params, options);
}

/// RequestSpec front door: validate_spec (the shared path of
/// core/request.h) plus the coordinate scan. spec.method is ignored —
/// sharded execution is FDBSCAN's decomposition — and spec.shards, when
/// nonzero, must match the engine's shard count.
template <int DIM>
[[nodiscard]] Expected<ShardedResult> cluster_sharded(
    ShardedEngine<DIM>& engine, const RequestSpec& spec) {
  if (auto error = validate_spec(spec)) return *std::move(error);
  if (spec.shards != 0 && spec.shards != engine.num_shards()) {
    return Error{ErrorCode::kInvalidShards,
                 "spec.shards (" + std::to_string(spec.shards) +
                     ") does not match the engine's shard count (" +
                     std::to_string(engine.num_shards()) + ")"};
  }
  return cluster_sharded(engine, spec.params, spec.options);
}

}  // namespace fdbscan::shard
