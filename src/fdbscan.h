// Umbrella header: the production surface of the fdbscan library — the
// paper's algorithms (FDBSCAN, FDBSCAN-DenseBox, auto-selection), the
// reusable Engine, the validated cluster() entry point, and the
// supporting index/exec/geometry modules.
//
//   #include <fdbscan.h>
//   auto clusters = fdbscan::fdbscan(points, {.eps = 0.01f, .minpts = 5});
//
// The seven comparison baselines (G-DBSCAN, CUDA-DClust, ...) are NOT
// exported here: they exist to reproduce the paper's tables, not to be
// shipped. Include <fdbscan_baselines.h> to get them. Individual
// components can also be included directly (see README.md for the
// module map).
#pragma once

#include "bvh/bvh.h"                    // IWYU pragma: export
#include "core/auto_select.h"           // IWYU pragma: export
#include "core/cluster.h"               // IWYU pragma: export
#include "core/clustering.h"            // IWYU pragma: export
#include "core/emst.h"                  // IWYU pragma: export
#include "core/engine.h"                // IWYU pragma: export
#include "core/fdbscan.h"               // IWYU pragma: export
#include "core/fdbscan_densebox.h"      // IWYU pragma: export
#include "core/fdbscan_periodic.h"      // IWYU pragma: export
#include "core/parameter_selection.h"   // IWYU pragma: export
#include "core/request.h"               // IWYU pragma: export
#include "core/status.h"                // IWYU pragma: export
#include "core/validate.h"              // IWYU pragma: export
#include "data/generators.h"            // IWYU pragma: export
#include "data/io.h"                    // IWYU pragma: export
#include "data/sliding_window.h"        // IWYU pragma: export
#include "distributed/distributed_dbscan.h"  // IWYU pragma: export
#include "exec/cancel.h"                // IWYU pragma: export
#include "exec/memory_tracker.h"        // IWYU pragma: export
#include "exec/parallel.h"              // IWYU pragma: export
#include "exec/radix_sort.h"            // IWYU pragma: export
#include "exec/workspace.h"             // IWYU pragma: export
#include "service/service.h"            // IWYU pragma: export
#include "shard/sharded_engine.h"       // IWYU pragma: export
#include "stream/streaming_engine.h"    // IWYU pragma: export
#include "geometry/box.h"               // IWYU pragma: export
#include "geometry/morton.h"            // IWYU pragma: export
#include "geometry/point.h"             // IWYU pragma: export
#include "grid/dense_grid.h"            // IWYU pragma: export
#include "grid/uniform_grid_index.h"    // IWYU pragma: export
#include "kdtree/kdtree.h"              // IWYU pragma: export
#include "unionfind/union_find.h"       // IWYU pragma: export
