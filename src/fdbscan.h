// Umbrella header: the full public API of the fdbscan library.
//
//   #include <fdbscan.h>
//   auto clusters = fdbscan::fdbscan(points, {.eps = 0.01f, .minpts = 5});
//
// Individual components can also be included directly (see README.md for
// the module map).
#pragma once

#include "baselines/cell_fof.h"         // IWYU pragma: export
#include "baselines/cuda_dclust.h"      // IWYU pragma: export
#include "baselines/dsdbscan.h"         // IWYU pragma: export
#include "baselines/gdbscan.h"          // IWYU pragma: export
#include "baselines/hybrid_gowanlock.h" // IWYU pragma: export
#include "baselines/mr_scan.h"          // IWYU pragma: export
#include "baselines/sequential_dbscan.h"  // IWYU pragma: export
#include "bvh/bvh.h"                    // IWYU pragma: export
#include "core/auto_select.h"           // IWYU pragma: export
#include "core/clustering.h"            // IWYU pragma: export
#include "core/emst.h"                  // IWYU pragma: export
#include "core/fdbscan.h"               // IWYU pragma: export
#include "core/fdbscan_densebox.h"      // IWYU pragma: export
#include "core/fdbscan_periodic.h"      // IWYU pragma: export
#include "core/parameter_selection.h"   // IWYU pragma: export
#include "core/validate.h"              // IWYU pragma: export
#include "data/generators.h"            // IWYU pragma: export
#include "data/io.h"                    // IWYU pragma: export
#include "distributed/distributed_dbscan.h"  // IWYU pragma: export
#include "exec/memory_tracker.h"        // IWYU pragma: export
#include "exec/parallel.h"              // IWYU pragma: export
#include "exec/radix_sort.h"            // IWYU pragma: export
#include "geometry/box.h"               // IWYU pragma: export
#include "geometry/morton.h"            // IWYU pragma: export
#include "geometry/point.h"             // IWYU pragma: export
#include "grid/dense_grid.h"            // IWYU pragma: export
#include "grid/uniform_grid_index.h"    // IWYU pragma: export
#include "kdtree/kdtree.h"              // IWYU pragma: export
#include "unionfind/union_find.h"       // IWYU pragma: export
