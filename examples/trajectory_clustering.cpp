// Trajectory hot-spot detection: the paper's §5.1 use case. Clusters GPS
// pings from city taxi trajectories to find dense pickup/traffic regions,
// comparing all four evaluated algorithms on the same input and writing
// the FDBSCAN-DenseBox labeling to CSV for plotting.
//
//   $ ./trajectory_clustering [n] [eps] [minpts] [out.csv]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fdbscan.h"
#include "fdbscan_baselines.h"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 16384;
  const float eps = argc > 2 ? std::strtof(argv[2], nullptr) : 0.01f;
  const std::int32_t minpts =
      argc > 3 ? static_cast<std::int32_t>(std::atoi(argv[3])) : 50;
  const std::string out = argc > 4 ? argv[4] : "";

  const auto points = fdbscan::data::porto_taxi_like(n, 2023);
  const fdbscan::Parameters params{eps, minpts};

  std::printf("taxi pings: %lld, eps=%.4f, minpts=%d\n",
              static_cast<long long>(n), eps, minpts);
  std::printf("%-18s %10s %10s %10s\n", "algorithm", "time[ms]", "clusters",
              "noise");

  auto report = [](const char* name, const fdbscan::Clustering& c) {
    std::printf("%-18s %10.1f %10d %10lld\n", name, c.timings.total() * 1e3,
                c.num_clusters, static_cast<long long>(c.num_noise()));
  };

  report("cuda-dclust", fdbscan::baselines::cuda_dclust(points, params));
  report("g-dbscan", fdbscan::baselines::gdbscan(points, params));
  report("fdbscan", fdbscan::fdbscan(points, params));
  const auto densebox = fdbscan::fdbscan_densebox(points, params);
  report("fdbscan-densebox", densebox);

  std::printf("densebox: %d dense cells holding %.1f%% of points\n",
              densebox.num_dense_cells,
              100.0 * densebox.points_in_dense_cells / static_cast<double>(n));

  if (!out.empty()) {
    fdbscan::data::write_labeled_csv(out, points, densebox.labels);
    std::printf("labeled points written to %s\n", out.c_str());
  }
  return 0;
}
