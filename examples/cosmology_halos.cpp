// Halo finding in a cosmology snapshot (§5.2): Friends-of-Friends
// clustering (DBSCAN with minpts = 2) over an N-body particle sample,
// followed by a halo mass function — the classic analysis the paper's 3-D
// experiment comes from (HACC + halo identification).
//
//   $ ./cosmology_halos [n] [linking_length]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fdbscan.h"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 500000;
  // In FoF terms eps is the "linking length"; the paper's physical
  // choice is 0.042 Mpc/h for its simulation's 0.25 Mpc/h mean spacing.
  // Scale the box with n so the number density matches the paper's
  // 16M-particles-per-64^3 regardless of sample size.
  fdbscan::data::CosmologyConfig config;
  config.box_size = 64.0f * std::cbrt(static_cast<float>(n) / 16e6f);
  const float eps = argc > 2 ? std::strtof(argv[2], nullptr) : 0.042f;

  const auto particles = fdbscan::data::hacc_like(n, 7, config);
  std::printf("particles: %lld in a %.1f^3 box (paper density), linking "
              "length %.3f\n",
              static_cast<long long>(n), config.box_size, eps);

  const auto halos =
      fdbscan::fdbscan(particles, fdbscan::Parameters{eps, 2});
  std::printf("FoF groups: %d (%.1f ms), %lld unclustered particles\n",
              halos.num_clusters, halos.timings.total() * 1e3,
              static_cast<long long>(halos.num_noise()));

  // Halo mass function: group counts per size decade.
  std::vector<std::int64_t> size_of(
      static_cast<std::size_t>(halos.num_clusters), 0);
  for (auto label : halos.labels) {
    if (label != fdbscan::kNoise) ++size_of[static_cast<std::size_t>(label)];
  }
  std::int64_t bins[7] = {};  // [2,10), [10,100), ... per decade
  for (auto s : size_of) {
    int b = 0;
    for (std::int64_t t = 10; s >= t && b < 6; t *= 10) ++b;
    ++bins[b];
  }
  std::printf("halo mass function (groups per size decade):\n");
  const char* ranges[] = {"2-9",       "10-99",     "100-999", "1k-9.9k",
                          "10k-99.9k", "100k-999k", ">=1M"};
  for (int b = 0; b < 7; ++b) {
    if (bins[b] > 0) {
      std::printf("  %-10s %lld\n", ranges[b],
                  static_cast<long long>(bins[b]));
    }
  }
  const auto largest = std::max_element(size_of.begin(), size_of.end());
  if (largest != size_of.end()) {
    std::printf("largest halo: %lld particles\n",
                static_cast<long long>(*largest));
  }

  // Production halo finders use the periodic minimum-image metric: halos
  // wrapping across the box faces must not be split.
  fdbscan::Box3 box;
  for (int d = 0; d < 3; ++d) {
    box.min[d] = 0.0f;
    box.max[d] = config.box_size;
  }
  const auto periodic = fdbscan::fdbscan_periodic(
      particles, fdbscan::Parameters{eps, 2}, box);
  std::printf("with periodic boundaries: %d FoF groups (%d wrapped "
              "across faces)\n",
              periodic.num_clusters, halos.num_clusters - periodic.num_clusters);
  return 0;
}
