// Quickstart: cluster a blobby 2-D dataset with FDBSCAN in a dozen lines.
//
//   $ ./quickstart [n]
//
// Demonstrates the minimal public API: generate points, pick (eps,
// minpts), call the validated cluster() entry point, inspect the
// Clustering result. cluster() returns Expected<Clustering, Error>:
// malformed parameters come back as a typed error instead of garbage
// labels (try eps = 0 to see the rejection path).
#include <cstdio>
#include <cstdlib>

#include "fdbscan.h"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 10000;

  // Five Gaussian blobs in the unit square with sigma 0.01.
  const auto points = fdbscan::data::gaussian_mixture2(n, 5, 1.0f, 0.01f, 42);

  // eps: neighborhood radius. minpts: density threshold (|N_eps(x)| >=
  // minpts, the point itself included, makes x a core point).
  const fdbscan::Parameters params{0.01f, 10};

  const auto result =
      fdbscan::cluster(points, params, {}, fdbscan::Method::kFdbscan);
  if (!result) {
    std::fprintf(stderr, "invalid input [%s]: %s\n",
                 fdbscan::error_code_name(result.error().code),
                 result.error().message.c_str());
    return 1;
  }
  const fdbscan::Clustering& clusters = *result;

  std::printf("points:    %lld\n", static_cast<long long>(n));
  std::printf("clusters:  %d\n", clusters.num_clusters);
  std::printf("noise:     %lld\n", static_cast<long long>(clusters.num_noise()));
  std::printf("time:      %.1f ms (build %.1f, preprocess %.1f, main %.1f, "
              "finalize %.1f)\n",
              clusters.timings.total() * 1e3,
              clusters.timings.index_construction * 1e3,
              clusters.timings.preprocessing * 1e3,
              clusters.timings.main * 1e3,
              clusters.timings.finalization * 1e3);

  // Per-cluster sizes.
  std::vector<std::int64_t> sizes(
      static_cast<std::size_t>(clusters.num_clusters), 0);
  for (auto label : clusters.labels) {
    if (label != fdbscan::kNoise) ++sizes[static_cast<std::size_t>(label)];
  }
  for (std::size_t c = 0; c < sizes.size(); ++c) {
    std::printf("  cluster %zu: %lld points\n", c,
                static_cast<long long>(sizes[c]));
  }
  return 0;
}
