// Renders the evaluation datasets as ASCII density maps (the stand-in
// for the paper's Fig. 3 scatter plots and Fig. 5 visualization) and
// optionally dumps them to CSV for real plotting.
//
//   $ ./dataset_gallery [n] [--csv-dir DIR]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fdbscan.h"

namespace {

template <int DIM>
void render(const char* title, const std::vector<fdbscan::Point<DIM>>& points) {
  constexpr int kW = 72, kH = 24;
  const auto bounds = fdbscan::bounds_of(points.data(), points.size());
  std::vector<int> histogram(kW * kH, 0);
  for (const auto& p : points) {
    // Project onto the first two coordinates.
    const float fx = (p[0] - bounds.min[0]) /
                     std::max(bounds.max[0] - bounds.min[0], 1e-9f);
    const float fy = (p[1] - bounds.min[1]) /
                     std::max(bounds.max[1] - bounds.min[1], 1e-9f);
    const int x = std::min(kW - 1, static_cast<int>(fx * kW));
    const int y = std::min(kH - 1, static_cast<int>(fy * kH));
    ++histogram[static_cast<std::size_t>(y * kW + x)];
  }
  const int peak = *std::max_element(histogram.begin(), histogram.end());
  static const char shades[] = " .:-=+*#%@";
  std::printf("--- %s (%zu points, peak bin %d) ---\n", title, points.size(),
              peak);
  for (int y = kH - 1; y >= 0; --y) {  // latitude increases upwards
    for (int x = 0; x < kW; ++x) {
      const int count = histogram[static_cast<std::size_t>(y * kW + x)];
      const int shade =
          count == 0
              ? 0
              : 1 + static_cast<int>(8.0 * std::min(1.0, std::log1p(count) /
                                                             std::log1p(peak)));
      std::putchar(shades[std::min(shade, 9)]);
    }
    std::putchar('\n');
  }
  std::putchar('\n');
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t n = 10000;
  std::string csv_dir;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--csv-dir") == 0 && a + 1 < argc) {
      csv_dir = argv[++a];
    } else {
      n = std::atoll(argv[a]);
    }
  }

  const auto ngsim = fdbscan::data::ngsim_like(n, 1);
  const auto porto = fdbscan::data::porto_taxi_like(n, 2);
  const auto road = fdbscan::data::road_network_like(n, 3);
  const auto cosmo = fdbscan::data::hacc_like(n, 4);

  render("NGSIM-like (zoomed: one of three sites in view)", ngsim);
  render("PortoTaxi-like", porto);
  render("3DRoad-like", road);
  render("HACC-like cosmology (xy-projection)", cosmo);

  if (!csv_dir.empty()) {
    fdbscan::data::write_csv(csv_dir + "/ngsim_like.csv", ngsim);
    fdbscan::data::write_csv(csv_dir + "/porto_like.csv", porto);
    fdbscan::data::write_csv(csv_dir + "/road_like.csv", road);
    fdbscan::data::write_csv(csv_dir + "/hacc_like.csv", cosmo);
    std::printf("CSV dumps written to %s\n", csv_dir.c_str());
  }
  return 0;
}
