// Hierarchical density clustering on the HDBSCAN path the paper's §2.1
// points to: build the mutual-reachability minimum spanning tree once
// (parallel Boruvka over the BVH), then read every DBSCAN* clustering off
// it by cutting the dendrogram at different eps — no re-clustering.
//
//   $ ./hierarchical_clustering [n] [k]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fdbscan.h"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  const std::int32_t k =
      argc > 2 ? static_cast<std::int32_t>(std::atoi(argv[2])) : 8;

  const auto points = fdbscan::data::gaussian_mixture2(n, 12, 1.0f, 0.008f, 5);

  fdbscan::exec::Timer timer;
  fdbscan::MstConfig config;
  config.mutual_reachability_k = k;
  const auto mst = fdbscan::euclidean_mst(points, config);
  std::printf("mutual-reachability MST (k=%d) over %lld points: %zu edges, "
              "weight %.3f, built in %.1f ms\n",
              k, static_cast<long long>(n), mst.size(),
              fdbscan::mst_weight(mst), timer.lap() * 1e3);

  // The largest MST edges are the natural cut candidates.
  auto weights = mst;
  std::sort(weights.begin(), weights.end(),
            [](const fdbscan::MstEdge& a, const fdbscan::MstEdge& b) {
              return a.distance > b.distance;
            });
  std::printf("largest merge distances: %.4f %.4f %.4f ... median %.5f\n",
              weights[0].distance, weights[1].distance, weights[2].distance,
              weights[weights.size() / 2].distance);

  // Core distances are shared by every cut.
  const auto core_distances = fdbscan::k_distances(points, k);
  std::printf("%-10s %10s %10s %12s\n", "cut eps", "clusters", "noise",
              "cut time ms");
  timer.lap();
  for (float eps : {0.002f, 0.005f, 0.01f, 0.02f, 0.05f}) {
    const auto cut = fdbscan::hdbscan_cut(core_distances, mst, eps);
    std::printf("%-10.3f %10d %10lld %12.1f\n", eps, cut.num_clusters,
                static_cast<long long>(cut.num_noise()), timer.lap() * 1e3);
  }
  std::printf("(each cut equals DBSCAN* at that eps with minpts=%d — the\n"
              " defining property of the HDBSCAN hierarchy)\n", k);
  return 0;
}
