// Serving scenario: the in-process ClusterService (DESIGN.md §10).
//
//   $ ./service_demo [n]
//
// Walks the whole service surface in one run:
//   1. concurrent submits against two datasets — requests naming the
//      same dataset id share one warm engine (one BVH build per
//      dataset), requests naming different ids run in parallel;
//   2. backpressure — a queue sized FDBSCAN_SERVICE_QUEUE_CAP rejects
//      the overflow with Error{kQueueFull} instead of blocking;
//   3. cancellation — a caller-held CancelToken stops a running request
//      within one chunk-quantum and the engine stays reusable;
//   4. deadlines — a request with a tiny latency budget resolves to
//      Error{kDeadlineExceeded};
//   5. the metrics snapshot: terminal-state counts and queue-wait /
//      run-time latency summaries.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "fdbscan.h"
#include "obs/statusz.h"

namespace {

const char* outcome(const fdbscan::service::ServiceResult& result) {
  return result.has_value() ? "ok"
                            : fdbscan::error_code_name(result.error().code);
}

}  // namespace

int main(int argc, char** argv) {
  // SIGUSR1 dumps a statusz snapshot of the metrics registry
  // (FDBSCAN_STATUSZ selects the sink; see DESIGN.md §13).
  fdbscan::obs::statusz_install();
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  using fdbscan::service::ClusterService;
  using fdbscan::service::ServiceConfig;
  using fdbscan::service::SubmitOptions;

  const auto ngsim = std::make_shared<const std::vector<fdbscan::Point2>>(
      fdbscan::data::gaussian_mixture2(n, 5, 1.0f, 0.01f, 42));
  const auto porto = std::make_shared<const std::vector<fdbscan::Point2>>(
      fdbscan::data::uniform2(n, 1.0f, 7));
  const fdbscan::Parameters params{0.01f, 10};

  ServiceConfig config;
  config.queue_capacity = 8;
  config.dispatchers = 2;
  ClusterService service(config);

  // --- 1. Warm-engine reuse across concurrent requests -------------------
  // Plain FDBSCAN: its point BVH is eps/minpts-independent, so the whole
  // sweep needs exactly one index build per dataset.
  SubmitOptions plain;
  plain.method = fdbscan::Method::kFdbscan;
  std::vector<std::future<fdbscan::service::ServiceResult>> futures;
  for (int i = 0; i < 3; ++i) {
    fdbscan::Parameters sweep = params;
    sweep.minpts = 5 + 5 * i;  // parameter sweep over one dataset
    futures.push_back(service.submit<2>("ngsim", ngsim, sweep, plain));
    futures.push_back(service.submit<2>("porto", porto, sweep, plain));
  }
  for (auto& f : futures) {
    const auto result = f.get();
    if (result) {
      std::printf("request: ok, %d clusters\n", result->num_clusters);
    } else {
      std::printf("request: %s\n", outcome(result));
    }
  }
  for (const auto& d : service.dataset_stats()) {
    std::printf("dataset %-6s runs=%lld index_builds=%lld (one build, then "
                "warm)\n",
                d.id.c_str(), static_cast<long long>(d.runs),
                static_cast<long long>(d.index_builds));
  }

  // --- 2. Backpressure: overflow the bounded queue -----------------------
  service.wait_idle();
  std::vector<std::future<fdbscan::service::ServiceResult>> burst;
  for (int i = 0; i < 16; ++i) {
    burst.push_back(service.submit<2>("ngsim", ngsim, params));
  }
  int rejected = 0;
  for (auto& f : burst) {
    const auto result = f.get();
    if (!result && result.error().code == fdbscan::ErrorCode::kQueueFull) {
      ++rejected;
    }
  }
  std::printf("burst of 16 into a queue of %d: %d rejected with QueueFull\n",
              config.queue_capacity, rejected);

  // --- 3. Cooperative cancellation ---------------------------------------
  auto token = std::make_shared<fdbscan::exec::CancelToken>();
  SubmitOptions cancellable;
  cancellable.token = token;
  auto doomed = service.submit<2>("ngsim", ngsim, params, cancellable);
  std::this_thread::sleep_for(std::chrono::microseconds(200));
  token->request_cancel();
  std::printf("cancelled mid-run: %s\n", outcome(doomed.get()));

  // --- 4. Deadlines -------------------------------------------------------
  SubmitOptions strict;
  strict.deadline_ms = 0.0;  // elapsed before submission: fails fast
  auto late = service.submit<2>("ngsim", ngsim, params, strict);
  std::printf("zero deadline: %s\n", outcome(late.get()));

  // The engine survived the cancellation: a fresh run still serves.
  auto fresh = service.submit<2>("ngsim", ngsim, params).get();
  std::printf("after cancel, same engine: %s\n", outcome(fresh));

  // --- 5. Metrics ---------------------------------------------------------
  service.wait_idle();
  const auto m = service.metrics();
  std::printf(
      "metrics: submitted=%lld completed=%lld rejected=%lld cancelled=%lld "
      "deadline_exceeded=%lld failed=%lld\n",
      static_cast<long long>(m.submitted), static_cast<long long>(m.completed),
      static_cast<long long>(m.rejected), static_cast<long long>(m.cancelled),
      static_cast<long long>(m.deadline_exceeded),
      static_cast<long long>(m.failed));
  std::printf("queue wait: mean %.3f ms, max %.3f ms over %lld dispatches\n",
              m.queue_wait.mean_ms(), m.queue_wait.max_ms,
              static_cast<long long>(m.queue_wait.count));
  std::printf("run time:   mean %.3f ms, max %.3f ms\n", m.run_time.mean_ms(),
              m.run_time.max_ms);
  return 0;
}
