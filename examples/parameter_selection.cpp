// Choosing (eps, minpts) with the sorted k-dist heuristic of the
// original DBSCAN paper (Ester et al. 1996), computed here with batched
// k-nearest-neighbor queries on the BVH. Prints a textual k-dist curve,
// picks eps at a noise quantile, and shows the resulting clustering.
//
//   $ ./parameter_selection [n] [minpts] [noise_fraction]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "fdbscan.h"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 20000;
  const std::int32_t minpts =
      argc > 2 ? static_cast<std::int32_t>(std::atoi(argv[2])) : 8;
  const double noise_fraction =
      argc > 3 ? std::strtod(argv[3], nullptr) : 0.02;

  const auto points = fdbscan::data::porto_taxi_like(n, 99);

  const auto curve = fdbscan::sorted_k_distances(points, minpts);
  std::printf("sorted %d-dist curve (descending), %lld points:\n", minpts,
              static_cast<long long>(n));
  for (double q : {0.001, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 0.90}) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(n));
    std::printf("  quantile %5.1f%%: k-dist %.5f\n", 100.0 * q,
                curve[std::min(idx, curve.size() - 1)]);
  }

  const float eps = fdbscan::suggest_eps(points, minpts, noise_fraction);
  std::printf("suggested eps for ~%.0f%% noise: %.5f\n",
              100.0 * noise_fraction, eps);

  const auto clusters =
      fdbscan::fdbscan_densebox(points, fdbscan::Parameters{eps, minpts});
  std::printf("clustering: %d clusters, %lld noise (%.1f%% of points), "
              "%.1f ms\n",
              clusters.num_clusters,
              static_cast<long long>(clusters.num_noise()),
              100.0 * static_cast<double>(clusters.num_noise()) /
                  static_cast<double>(n),
              clusters.timings.total() * 1e3);
  return 0;
}
