// Outlier removal with DBSCAN vs DBSCAN* — one of the classic DBSCAN
// applications (the paper's intro cites noise filtering / outlier
// detection). A clean signal (highway trajectories) is polluted with
// uniform clutter; DBSCAN recovers the signal as clusters and flags the
// clutter as noise. DBSCAN* (the paper's future-work variant, included in
// this library) additionally drops border points for a statistically
// cleaner signal.
//
//   $ ./noise_filtering [n_signal] [n_clutter]
#include <cstdio>
#include <cstdlib>

#include "fdbscan.h"

int main(int argc, char** argv) {
  const std::int64_t n_signal = argc > 1 ? std::atoll(argv[1]) : 20000;
  const std::int64_t n_clutter = argc > 2 ? std::atoll(argv[2]) : 2000;

  auto points = fdbscan::data::ngsim_like(n_signal, 11);
  const auto clutter = fdbscan::data::uniform2(n_clutter, 1.0f, 12);
  points.insert(points.end(), clutter.begin(), clutter.end());

  const fdbscan::Parameters params{0.002f, 20};

  for (auto variant :
       {fdbscan::Variant::kDbscan, fdbscan::Variant::kDbscanStar}) {
    fdbscan::Options options;
    options.variant = variant;
    const auto result = fdbscan::fdbscan_densebox(points, params, options);

    // Precision/recall of "signal" = clustered, using ground truth:
    // the first n_signal points are signal, the rest clutter.
    std::int64_t kept_signal = 0, kept_clutter = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (result.labels[i] == fdbscan::kNoise) continue;
      (static_cast<std::int64_t>(i) < n_signal ? kept_signal : kept_clutter)++;
    }
    const double recall =
        static_cast<double>(kept_signal) / static_cast<double>(n_signal);
    const double precision = static_cast<double>(kept_signal) /
                             static_cast<double>(kept_signal + kept_clutter);
    std::printf("%-8s kept %6lld/%lld signal (recall %.3f), let through "
                "%4lld/%lld clutter (precision %.3f), %d clusters\n",
                variant == fdbscan::Variant::kDbscan ? "DBSCAN" : "DBSCAN*",
                static_cast<long long>(kept_signal),
                static_cast<long long>(n_signal), recall,
                static_cast<long long>(kept_clutter),
                static_cast<long long>(n_clutter), precision,
                result.num_clusters);
  }
  return 0;
}
