// Distributed DBSCAN demo (§6 future work): decomposes a cosmology
// snapshot across a grid of simulated ranks, runs the paper's local
// algorithm per rank with halo exchange, and reports the decomposition
// statistics a real MPI run would communicate. Also demonstrates the
// FDBSCAN/DenseBox auto-selection heuristic.
//
//   $ ./distributed_clustering [n] [ranks_per_dim]
#include <cstdio>
#include <cstdlib>

#include "fdbscan.h"

int main(int argc, char** argv) {
  const std::int64_t n = argc > 1 ? std::atoll(argv[1]) : 200000;
  const std::int32_t r = argc > 2
                             ? static_cast<std::int32_t>(std::atoi(argv[2]))
                             : 2;

  fdbscan::data::CosmologyConfig cosmo;
  cosmo.box_size = 64.0f * std::cbrt(static_cast<float>(n) / 16e6f);
  const auto particles = fdbscan::data::hacc_like(n, 3, cosmo);
  const fdbscan::Parameters params{0.042f, 2};

  // Single-node reference.
  const auto local = fdbscan::fdbscan(particles, params);
  std::printf("single node:  %6.1f ms, %d clusters\n",
              local.timings.total() * 1e3, local.num_clusters);

  // Distributed run over an r x r x r rank grid.
  fdbscan::distributed::DistributedConfig<3> config;
  for (int d = 0; d < 3; ++d) config.ranks_per_dim[d] = r;
  const auto dist =
      fdbscan::distributed::distributed_dbscan(particles, params, config);
  std::printf("%d ranks:     %6.1f ms, %d clusters, %lld ghost points "
              "exchanged\n",
              config.num_ranks(), dist.clustering.timings.total() * 1e3,
              dist.clustering.num_clusters,
              static_cast<long long>(dist.total_ghosts()));
  for (std::size_t i = 0; i < dist.ranks.size(); ++i) {
    const auto& stats = dist.ranks[i];
    std::printf("  rank %2zu: %7d owned, %6d ghosts, %8lld cross-rank edges\n",
                i, stats.owned, stats.ghosts,
                static_cast<long long>(stats.cross_rank_edges));
  }
  if (dist.clustering.num_clusters != local.num_clusters) {
    std::printf("MISMATCH between local and distributed cluster counts!\n");
    return 1;
  }

  // Heuristic algorithm selection on the same data.
  const auto selection = fdbscan::fdbscan_auto(particles, params);
  std::printf("auto-select: estimated dense fraction %.1f%% -> %s\n",
              100.0 * selection.estimated_dense_fraction,
              selection.used_densebox ? "FDBSCAN-DenseBox" : "FDBSCAN");
  return 0;
}
